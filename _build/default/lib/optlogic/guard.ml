open Hlp_logic

let odc net ~wire man =
  let normal = Hlp_bdd.Bdd.of_netlist_all man net in
  let flipped =
    Hlp_bdd.Bdd.of_netlist_all ~override:(wire, Hlp_bdd.Bdd.not_ man) man net
  in
  Array.fold_left
    (fun acc (_, o) -> Hlp_bdd.Bdd.and_ man acc (Hlp_bdd.Bdd.xnor_ man normal.(o) flipped.(o)))
    (Hlp_bdd.Bdd.one man)
    net.Netlist.outputs

type candidate = {
  guard : Netlist.wire;
  targets : Netlist.wire list;
  cone : bool array;
  guard_prob : float;
}

let is_source (net : Netlist.t) i =
  match net.Netlist.nodes.(i).Netlist.kind with
  | Hlp_logic.Gate.Input | Hlp_logic.Gate.Const _ | Hlp_logic.Gate.Dff -> true
  | _ -> false

(* Exclusive cone of a wire set: gates in the transitive fanin of the set,
   all of whose output paths pass through the set (the set itself is
   included). *)
let exclusive_cone net ~targets =
  let n = Netlist.num_nodes net in
  let is_target = Array.make n false in
  List.iter (fun t -> is_target.(t) <- true) targets;
  let tfi = Array.make n false in
  let rec mark i =
    if not tfi.(i) then begin
      tfi.(i) <- true;
      if not (is_source net i) then Array.iter mark net.Netlist.nodes.(i).Netlist.fanin
    end
  in
  List.iter mark targets;
  (* backward reachability from the outputs, never entering a target *)
  let escapes = Array.make n false in
  let rec back i =
    if (not is_target.(i)) && not escapes.(i) then begin
      escapes.(i) <- true;
      if not (is_source net i) then
        Array.iter back net.Netlist.nodes.(i).Netlist.fanin
    end
  in
  Array.iter (fun (_, o) -> back o) net.Netlist.outputs;
  Array.init n (fun i -> tfi.(i) && (not escapes.(i)) && not (is_source net i))

let cone_boundary net cone =
  let inputs = ref [] in
  Array.iteri
    (fun i (node : Netlist.node) ->
      if cone.(i) then
        Array.iter (fun w -> if not cone.(w) then inputs := w :: !inputs) node.Netlist.fanin)
    net.Netlist.nodes;
  List.sort_uniq compare !inputs

(* Candidate guards come from the steering structure: a mux whose select is
   [s] ignores its a0 pin when [s] is high, so [s] implies the ODC of every
   a0 pin it selects away — and symmetrically an existing inverter of [s]
   guards the a1 cones. *)
let find_candidates net =
  let man = Hlp_bdd.Bdd.manager () in
  let funcs = Hlp_bdd.Bdd.of_netlist_all man net in
  let levels = Netlist.levels net in
  let caps = Netlist.node_capacitance net in
  let n = Netlist.num_nodes net in
  (* group mux data pins by select wire *)
  let arm0 = Hashtbl.create 8 and arm1 = Hashtbl.create 8 in
  Array.iter
    (fun (node : Netlist.node) ->
      match node.Netlist.kind with
      | Hlp_logic.Gate.Mux ->
          let sel = node.Netlist.fanin.(0) in
          Hashtbl.replace arm0 sel (node.Netlist.fanin.(1) :: Option.value ~default:[] (Hashtbl.find_opt arm0 sel));
          Hashtbl.replace arm1 sel (node.Netlist.fanin.(2) :: Option.value ~default:[] (Hashtbl.find_opt arm1 sel))
      | _ -> ())
    net.Netlist.nodes;
  (* inverters available in the original circuit *)
  let inverter_of = Hashtbl.create 8 in
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Hlp_logic.Gate.Not -> Hashtbl.replace inverter_of node.Netlist.fanin.(0) i
      | _ -> ())
    net.Netlist.nodes;
  let results = ref [] in
  let consider guard targets =
    let targets = List.sort_uniq compare (List.filter (fun t -> not (is_source net t)) targets) in
    if targets <> [] then begin
      let cone = exclusive_cone net ~targets in
      (* the guard must live outside the frozen cone *)
      if not cone.(guard) then begin
        let cone_size = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 cone in
        if cone_size >= 4 then begin
          (* timing: the guard settles before any boundary data changes
             propagate into the cone *)
          let boundary = cone_boundary net cone in
          let t_early =
            List.fold_left (fun acc w -> min acc levels.(w)) infinity boundary
          in
          if levels.(guard) <= t_early then begin
            (* semantic check: guard implies the ODC of every target *)
            let ok =
              List.for_all
                (fun z ->
                  let odc_z = odc net ~wire:z man in
                  Hlp_bdd.Bdd.is_zero
                    (Hlp_bdd.Bdd.and_ man funcs.(guard) (Hlp_bdd.Bdd.not_ man odc_z)))
                targets
            in
            if ok then begin
              let p = Hlp_bdd.Bdd.probability man ~p:(fun _ -> 0.5) funcs.(guard) in
              if p > 0.05 then begin
                let cone_cap = ref 0.0 in
                Array.iteri (fun i c -> if c then cone_cap := !cone_cap +. caps.(i)) cone;
                results :=
                  (p *. !cone_cap, { guard; targets; cone; guard_prob = p }) :: !results
              end
            end
          end
        end
      end
    end
  in
  Hashtbl.iter (fun sel pins -> consider sel pins) arm0;
  Hashtbl.iter
    (fun sel pins ->
      match Hashtbl.find_opt inverter_of sel with
      | Some inv -> consider inv pins
      | None -> ())
    arm1;
  ignore n;
  List.sort (fun (a, _) (b, _) -> compare b a) !results |> List.map snd

type evaluation = {
  baseline_cap : float;
  guarded_cap : float;
  saving : float;
  frozen_fraction : float;
}

let evaluate ?(cycles = 2000) ?(seed = 31) net cand =
  let n = Netlist.num_nodes net in
  let caps = Netlist.node_capacitance net in
  let rng = Hlp_util.Prng.create seed in
  let nin = Array.length net.Netlist.inputs in
  let vectors =
    Array.init cycles (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng))
  in
  let ref_sim = Hlp_sim.Funcsim.create net in
  let ref_outputs = Array.make cycles [] in
  Array.iteri
    (fun t vec ->
      Hlp_sim.Funcsim.step ref_sim vec;
      ref_outputs.(t) <-
        Array.to_list
          (Array.map (fun (_, o) -> Hlp_sim.Funcsim.value ref_sim o) net.Netlist.outputs))
    vectors;
  let baseline_cap = Hlp_sim.Funcsim.switched_capacitance ref_sim /. float_of_int cycles in
  (* guarded run with freeze semantics *)
  let values = Array.make n false in
  let switched = ref 0.0 in
  let frozen = ref 0 in
  let set i v =
    if values.(i) <> v then begin
      values.(i) <- v;
      switched := !switched +. caps.(i)
    end
  in
  let eval_node i =
    let node = net.Netlist.nodes.(i) in
    match node.Netlist.kind with
    | Hlp_logic.Gate.Input | Hlp_logic.Gate.Dff -> ()
    | Hlp_logic.Gate.Const b -> set i b
    | kind ->
        set i (Hlp_logic.Gate.eval kind (Array.map (fun w -> values.(w)) node.Netlist.fanin))
  in
  Array.iteri
    (fun t vec ->
      Array.iteri (fun k w -> set w vec.(k)) net.Netlist.inputs;
      for i = 0 to n - 1 do
        if not cand.cone.(i) then eval_node i
      done;
      let hold = values.(cand.guard) in
      if hold then incr frozen
      else
        for i = 0 to n - 1 do
          if cand.cone.(i) then eval_node i
        done;
      for i = 0 to n - 1 do
        if not cand.cone.(i) then eval_node i
      done;
      let outs =
        Array.to_list (Array.map (fun (_, o) -> values.(o)) net.Netlist.outputs)
      in
      if outs <> ref_outputs.(t) then failwith "Guard.evaluate: output mismatch")
    vectors;
  let guarded_cap = !switched /. float_of_int cycles in
  {
    baseline_cap;
    guarded_cap;
    saving = 1.0 -. (guarded_cap /. baseline_cap);
    frozen_fraction = float_of_int !frozen /. float_of_int cycles;
  }

let demo_circuit n =
  let module B = Netlist.Builder in
  let b = B.create () in
  let s = B.input ~name:"s" b in
  let a = B.inputs ~prefix:"a" b n in
  let bw = B.inputs ~prefix:"b" b n in
  (* the guard is inverted once so both arms have an existing guard signal;
     the operands are re-buffered so even the inverted guard settles before
     the data reaches either block (the t_l(s) <= t_e(Y) condition) *)
  let _s_n = B.not_ b s in
  let a = Array.map (fun w -> B.buf b (B.buf b w)) a in
  let bw = Array.map (fun w -> B.buf b (B.buf b w)) bw in
  let sum, _ = Hlp_logic.Generators.ripple_adder b a bw in
  let conj = Hlp_logic.Generators.and_word b a bw in
  let out = Array.init n (fun i -> B.mux b ~sel:s ~a0:sum.(i) ~a1:conj.(i)) in
  Array.iteri (fun i w -> B.output b (Printf.sprintf "o%d" i) w) out;
  B.finish b
