open Hlp_logic

type plan = {
  subset : int list;
  shutdown_prob : float;
  predictor_nodes : int;
}

let output_bdd man net ~output =
  let outs = Hlp_bdd.Bdd.of_netlist man net in
  match List.assoc_opt output outs with
  | Some f -> f
  | None -> invalid_arg ("Precompute: no output named " ^ output)

let predictors man net ~output ~subset =
  let n = Array.length net.Netlist.inputs in
  let others =
    List.filter (fun v -> not (List.mem v subset)) (List.init n (fun v -> v))
  in
  let f = output_bdd man net ~output in
  let g1 = Hlp_bdd.Bdd.forall man others f in
  let g0 = Hlp_bdd.Bdd.forall man others (Hlp_bdd.Bdd.not_ man f) in
  (f, g1, g0)

let analyze net ~output ~subset =
  let man = Hlp_bdd.Bdd.manager () in
  let _, g1, g0 = predictors man net ~output ~subset in
  let cover = Hlp_bdd.Bdd.or_ man g1 g0 in
  {
    subset;
    shutdown_prob = Hlp_bdd.Bdd.probability man ~p:(fun _ -> 0.5) cover;
    predictor_nodes = Hlp_bdd.Bdd.size_shared [ g1; g0 ];
  }

let rec subsets_of_size k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
      if k = 0 then [ [] ]
      else
        List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
        @ subsets_of_size k rest

let best_subset net ~output ~size =
  let n = Array.length net.Netlist.inputs in
  assert (n <= 20);
  let candidates = subsets_of_size size (List.init n (fun v -> v)) in
  let plans = List.map (fun subset -> analyze net ~output ~subset) candidates in
  match
    List.sort
      (fun a b ->
        match compare b.shutdown_prob a.shutdown_prob with
        | 0 -> compare a.predictor_nodes b.predictor_nodes
        | c -> c)
      plans
  with
  | best :: _ -> best
  | [] -> invalid_arg "Precompute.best_subset: no candidate subsets"

type evaluation = {
  baseline_cap : float;
  managed_cap : float;
  saving : float;
  observed_shutdown : float;
}

let evaluate ?(cycles = 2000) ?(seed = 23) net ~output plan =
  let man = Hlp_bdd.Bdd.manager () in
  let f, g1, g0 = predictors man net ~output ~subset:plan.subset in
  let n = Array.length net.Netlist.inputs in
  (* the predictor logic is synthesized for real (one mux per BDD node,
     Section III-H style) and simulated alongside the block, so its
     overhead is measured, not estimated *)
  let predictor_net = Bdd_synth.netlist_of_bdds ~nvars:n [ g1; g0 ] in
  let predictor_sim = Hlp_sim.Funcsim.create predictor_net in
  let rng = Hlp_util.Prng.create seed in
  let fresh () = Array.init n (fun _ -> Hlp_util.Prng.bool rng) in
  let vectors = Array.init cycles (fun _ -> fresh ()) in
  (* baseline *)
  let base_sim = Hlp_sim.Funcsim.create net in
  Array.iter (Hlp_sim.Funcsim.step base_sim) vectors;
  let baseline_cap = Hlp_sim.Funcsim.switched_capacitance base_sim /. float_of_int cycles in
  (* managed: the block sees held inputs on predictor hits *)
  let sim = Hlp_sim.Funcsim.create net in
  let held = ref vectors.(0) in
  let hits = ref 0 in
  Array.iter
    (fun vec ->
      let assign v = vec.(v) in
      Hlp_sim.Funcsim.step predictor_sim vec;
      let hit1 = Hlp_bdd.Bdd.eval g1 assign in
      let hit0 = Hlp_bdd.Bdd.eval g0 assign in
      (* the synthesized predictors must agree with their BDDs *)
      let outs = Array.to_list (Hlp_sim.Funcsim.outputs predictor_sim) in
      if List.assoc "o0" outs <> hit1 || List.assoc "o1" outs <> hit0 then
        failwith "Precompute.evaluate: synthesized predictor mismatch";
      let expected = Hlp_bdd.Bdd.eval f assign in
      if hit1 || hit0 then begin
        incr hits;
        Hlp_sim.Funcsim.step sim !held;
        (* the registered predictor supplies the output on a hit *)
        let out = if hit1 then true else false in
        if out <> expected then failwith "Precompute.evaluate: predictor disagrees"
      end
      else begin
        held := vec;
        Hlp_sim.Funcsim.step sim vec;
        let got =
          List.assoc output (Array.to_list (Hlp_sim.Funcsim.outputs sim))
        in
        if got <> expected then failwith "Precompute.evaluate: functional mismatch"
      end)
    vectors;
  let managed_cap =
    (Hlp_sim.Funcsim.switched_capacitance sim
    +. Hlp_sim.Funcsim.switched_capacitance predictor_sim)
    /. float_of_int cycles
  in
  {
    baseline_cap;
    managed_cap;
    saving = 1.0 -. (managed_cap /. baseline_cap);
    observed_shutdown = float_of_int !hits /. float_of_int cycles;
  }
