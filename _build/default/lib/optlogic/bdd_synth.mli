(** BDD-to-netlist synthesis (Section III-H, Lavagno et al. [97] lineage).

    The "obvious mapping of each BDD node to a multiplexor" the paper
    discusses: every distinct node becomes one 2:1 mux selected by its
    variable, sharing preserved by construction. Deep and mux-heavy — the
    paper's caveat — but exactly what precomputation needs to price its
    predictor functions with real simulated switching instead of an
    estimate. *)

val netlist_of_bdds :
  nvars:int -> Hlp_bdd.Bdd.t list -> Hlp_logic.Netlist.t
(** Build a netlist with [nvars] primary inputs (BDD variable [i] = input
    [i]) and one output [o<k>] per root, each realized as the mux network
    of its BDD. Roots must only mention variables below [nvars]. *)

val check_equivalence :
  nvars:int -> Hlp_bdd.Bdd.t list -> Hlp_logic.Netlist.t -> bool
(** Exhaustively compare the netlist against the BDDs (requires
    [nvars <= 16]); used by the tests. *)
