(** Low-power retiming (Section III-J, Fig. 9; Monteiro et al. [111]).

    Registers filter glitches: a flip-flop output makes at most one
    transition per cycle no matter how much its data pin glitched. Moving
    the register boundary of a pipeline to sit just after the gates with
    the worst glitching therefore reduces total switched capacitance even
    though the logic is unchanged. This module pipelines a combinational
    netlist by cutting it at a chosen depth and provides the glitch
    profiling that drives the choice of cut (the Monteiro heuristic:
    candidate gates are those with high glitch activity whose spurious
    transitions would otherwise propagate onward). *)

val glitch_profile :
  ?cycles:int -> ?seed:int -> Hlp_logic.Netlist.t -> float array
(** Per-node glitch capacitance per cycle under uniform random inputs
    (event-driven simulation with library delays). *)

val pipeline_at_depth : Hlp_logic.Netlist.t -> depth:int -> Hlp_logic.Netlist.t
(** Insert one pipeline stage: every wire crossing from logic depth
    [<= depth] to logic depth [> depth] (and every primary input feeding
    the deep region) goes through a flip-flop. The resulting circuit
    computes the same function with one cycle of extra latency. *)

type evaluation = {
  depth : int;
  total_cap : float;  (** switched capacitance per cycle, glitches included *)
  glitch_cap : float;
  registers : int;  (** flip-flops inserted by the cut *)
}

val evaluate_cut :
  ?cycles:int -> ?seed:int -> Hlp_logic.Netlist.t -> depth:int -> evaluation
(** Pipeline at the given depth and measure (depth 0 = register the raw
    inputs — effectively the unpipelined glitching baseline downstream). *)

val best_cut :
  ?cycles:int -> ?seed:int -> Hlp_logic.Netlist.t -> max_depth:int -> evaluation list
(** Sweep cut depths [0 .. max_depth] and return the evaluations sorted as
    swept; the minimum-capacitance entry is the low-power retiming. *)

val balance_paths : ?slack:float -> Hlp_logic.Netlist.t -> Hlp_logic.Netlist.t
(** Glitch reduction by delay balancing (Raghunathan, Dey, Jha [109]):
    buffer chains are inserted on gate inputs that arrive more than
    [slack] delay units before their latest sibling, so reconvergent
    paths arrive together and spurious transitions die out. Function
    preserved; area and capacitance grow, glitch capacitance drops. *)

val balancing_evaluation :
  ?cycles:int -> ?seed:int -> ?slack:float -> Hlp_logic.Netlist.t ->
  float * float * float * float
(** [(glitch_before, glitch_after, total_before, total_after)] switched
    capacitance per cycle under uniform inputs. *)
