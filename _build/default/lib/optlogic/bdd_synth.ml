open Hlp_logic

let netlist_of_bdds ~nvars roots =
  let module B = Netlist.Builder in
  let b = B.create () in
  let inputs = B.inputs b nvars in
  let zero = B.const_ b false and one = B.const_ b true in
  let wire_of root =
    Hlp_bdd.Bdd.fold root
      ~leaf:(fun v -> if v then one else zero)
      ~node:(fun var low high ->
        assert (var < nvars);
        B.mux b ~sel:inputs.(var) ~a0:low ~a1:high)
  in
  List.iteri (fun k root -> B.output b (Printf.sprintf "o%d" k) (wire_of root)) roots;
  let net = B.finish b in
  Netlist.validate net;
  net

let check_equivalence ~nvars roots net =
  assert (nvars <= 16);
  let sim = Hlp_sim.Funcsim.create net in
  let ok = ref true in
  for word = 0 to (1 lsl nvars) - 1 do
    let vec = Array.init nvars (fun i -> Hlp_util.Bits.bit word i) in
    Hlp_sim.Funcsim.step sim vec;
    let outs = Hlp_sim.Funcsim.outputs sim in
    List.iteri
      (fun k root ->
        let expect = Hlp_bdd.Bdd.eval root (fun v -> vec.(v)) in
        let got = List.assoc (Printf.sprintf "o%d" k) (Array.to_list outs) in
        if got <> expect then ok := false)
      roots
  done;
  !ok
