(** Gated clocks for reactive controllers (Section III-I, Fig. 7).

    The activation function [F_a] detects cycles in which neither the state
    nor the (registered) outputs would change and stops the local clock.
    Here [F_a] is the self-loop condition of the STG, realized as an
    equality comparator between the present-state and next-state vectors.
    Clock power is modeled explicitly: every flip-flop charges its clock
    pin each ungated cycle — the power clock gating actually removes (a
    self-looping register's output never toggles, so output-switching
    accounting alone cannot see the saving, as the paper's discussion of
    redundant clocking implies). *)

type evaluation = {
  normal_cap : float;  (** per cycle: logic + clock, no gating *)
  gated_cap : float;  (** per cycle: logic + gated clock + F_a overhead *)
  saving : float;
  idle_fraction : float;  (** cycles in which the clock was stopped *)
}

val clock_pin_cap : float
(** Clock-pin capacitance charged per flip-flop per ungated cycle. *)

val evaluate :
  ?cycles:int ->
  ?seed:int ->
  ?input_one_prob:float ->
  Hlp_fsm.Stg.t ->
  evaluation
(** Synthesize the machine, drive it with inputs whose bits are one with
    probability [input_one_prob] (default 0.5; low values keep reactive
    machines in their wait states), and compare the normal and gated
    designs. Functional behaviour is identical by construction: gating only
    fires on self-loops. *)
