open Hlp_logic

let glitch_profile ?(cycles = 500) ?(seed = 37) net =
  let sim = Hlp_sim.Eventsim.create net in
  let rng = Hlp_util.Prng.create seed in
  let nin = Array.length net.Netlist.inputs in
  Hlp_sim.Eventsim.run sim (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng)) cycles;
  let caps = Netlist.node_capacitance net in
  Array.mapi
    (fun i g -> float_of_int g *. caps.(i) /. float_of_int cycles)
    (Hlp_sim.Eventsim.glitch_counts sim)

(* depth in gate counts, as in Netlist.logic_depth *)
let node_depths net =
  let n = Netlist.num_nodes net in
  let d = Array.make n 0 in
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input | Gate.Const _ | Gate.Dff -> d.(i) <- 0
      | _ ->
          d.(i) <-
            1 + Array.fold_left (fun acc w -> max acc d.(w)) 0 node.Netlist.fanin)
    net.Netlist.nodes;
  d

let pipeline_at_depth net ~depth =
  assert (Netlist.num_dffs net = 0);
  let module B = Netlist.Builder in
  let depths = node_depths net in
  let b = B.create () in
  let n = Netlist.num_nodes net in
  (* shallow copies of nodes with depth <= depth, registered versions of
     the wires crossing the cut, deep copies above it *)
  let shallow = Array.make n (-1) in
  let registered = Array.make n (-1) in
  let deep = Array.make n (-1) in
  let reg_count = ref 0 in
  let get_registered w =
    if registered.(w) < 0 then begin
      registered.(w) <- B.dff b shallow.(w);
      incr reg_count
    end;
    registered.(w)
  in
  (* first pass: rebuild the shallow region (including inputs/constants) *)
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input -> shallow.(i) <- B.input ~name:net.Netlist.input_names.(
          (* index of this input among inputs *)
          let rec find k = if net.Netlist.inputs.(k) = i then k else find (k + 1) in
          find 0) b
      | Gate.Const v -> shallow.(i) <- B.const_ b v
      | Gate.Dff -> assert false
      | kind ->
          if depths.(i) <= depth then
            shallow.(i) <- B.gate b kind (Array.map (fun w -> shallow.(w)) node.Netlist.fanin))
    net.Netlist.nodes;
  (* second pass: rebuild the deep region on top of registered cut wires *)
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input | Gate.Const _ | Gate.Dff -> ()
      | kind ->
          if depths.(i) > depth then begin
            let pin w =
              if depths.(w) <= depth then get_registered w else deep.(w)
            in
            deep.(i) <- B.gate b kind (Array.map pin node.Netlist.fanin)
          end)
    net.Netlist.nodes;
  Array.iter
    (fun (name, o) ->
      let w = if depths.(o) <= depth then get_registered o else deep.(o) in
      B.output b name w)
    net.Netlist.outputs;
  let out = B.finish b in
  Netlist.validate out;
  out

type evaluation = {
  depth : int;
  total_cap : float;
  glitch_cap : float;
  registers : int;
}

let evaluate_cut ?(cycles = 500) ?(seed = 41) net ~depth =
  let pipelined = pipeline_at_depth net ~depth in
  let sim = Hlp_sim.Eventsim.create pipelined in
  let rng = Hlp_util.Prng.create seed in
  let nin = Array.length pipelined.Netlist.inputs in
  Hlp_sim.Eventsim.run sim (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng)) cycles;
  {
    depth;
    total_cap = Hlp_sim.Eventsim.switched_capacitance sim /. float_of_int cycles;
    glitch_cap = Hlp_sim.Eventsim.glitch_capacitance sim /. float_of_int cycles;
    registers = Netlist.num_dffs pipelined;
  }

let best_cut ?cycles ?seed net ~max_depth =
  List.init (max_depth + 1) (fun depth -> evaluate_cut ?cycles ?seed net ~depth)

let balance_paths ?(slack = 1.5) net =
  assert (Netlist.num_dffs net = 0);
  let module B = Netlist.Builder in
  let b = B.create () in
  let n = Netlist.num_nodes net in
  let mapped = Array.make n (-1) in
  let arrival = Array.make n 0.0 in
  let buf_delay = Gate.delay Gate.Buf in
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input ->
          let rec idx k = if net.Netlist.inputs.(k) = i then k else idx (k + 1) in
          mapped.(i) <- B.input ~name:net.Netlist.input_names.(idx 0) b;
          arrival.(i) <- 0.0
      | Gate.Const v ->
          mapped.(i) <- B.const_ b v;
          arrival.(i) <- 0.0
      | Gate.Dff -> assert false
      | kind ->
          let arr = Array.map (fun w -> arrival.(w)) node.Netlist.fanin in
          let latest = Array.fold_left max 0.0 arr in
          let fanin =
            Array.mapi
              (fun k w ->
                let gap = latest -. arr.(k) in
                if gap > slack then begin
                  (* pad the early input with at most 6 buffers *)
                  let count = min 6 (int_of_float (gap /. buf_delay)) in
                  let rec pad wire j = if j = 0 then wire else pad (B.buf b wire) (j - 1) in
                  pad mapped.(w) count
                end
                else mapped.(w))
              node.Netlist.fanin
          in
          mapped.(i) <- B.gate b kind fanin;
          arrival.(i) <- latest +. Gate.delay kind)
    net.Netlist.nodes;
  Array.iter (fun (name, o) -> B.output b name mapped.(o)) net.Netlist.outputs;
  let out = B.finish b in
  Netlist.validate out;
  out

let balancing_evaluation ?(cycles = 400) ?(seed = 43) ?slack net =
  let balanced = balance_paths ?slack net in
  let run m =
    let sim = Hlp_sim.Eventsim.create m in
    let rng = Hlp_util.Prng.create seed in
    let nin = Array.length m.Netlist.inputs in
    Hlp_sim.Eventsim.run sim (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng)) cycles;
    ( Hlp_sim.Eventsim.glitch_capacitance sim /. float_of_int cycles,
      Hlp_sim.Eventsim.switched_capacitance sim /. float_of_int cycles )
  in
  let gb, tb = run net in
  let ga, ta = run balanced in
  (gb, ga, tb, ta)
