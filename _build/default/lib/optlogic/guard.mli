(** Guarded evaluation (Section III-I, Fig. 8; Tiwari et al. [105]).

    Pure guarded evaluation finds an {e existing} signal [s] that implies
    the observability don't-care set of a block's boundary signals; when
    [s] is high the block cannot affect any primary output, so transparent
    latches at its inputs freeze it — no new logic is synthesized.
    Candidates come from the steering structure (a mux select implies the
    ODC of the data pins it routes away), and each one is verified
    semantically with BDD-computed ODCs and structurally with the timing
    condition [t_l(s) <= t_e(Y)]. *)

val odc :
  Hlp_logic.Netlist.t -> wire:Hlp_logic.Netlist.wire -> Hlp_bdd.Bdd.man -> Hlp_bdd.Bdd.t
(** Observability don't-care set of a node w.r.t. all primary outputs, as a
    function of the primary inputs: assignments under which flipping the
    node's value changes no output. Combinational netlists only. *)

type candidate = {
  guard : Hlp_logic.Netlist.wire;  (** the existing signal used as guard *)
  targets : Hlp_logic.Netlist.wire list;
      (** boundary wires of the frozen block (e.g. the mux data pins) *)
  cone : bool array;  (** the frozen gates: exclusive fanin of the targets *)
  guard_prob : float;  (** [P(guard = 1)] under uniform inputs *)
}

val find_candidates : Hlp_logic.Netlist.t -> candidate list
(** Guarded-evaluation opportunities, sorted by expected savings
    (cone capacitance x guard probability). *)

type evaluation = {
  baseline_cap : float;
  guarded_cap : float;
  saving : float;
  frozen_fraction : float;  (** cycles in which the latches held *)
}

val evaluate :
  ?cycles:int -> ?seed:int -> Hlp_logic.Netlist.t -> candidate -> evaluation
(** Simulate with freeze semantics — when the guard evaluates to 1, every
    node in the cone keeps its previous value — and check that all primary
    outputs match the unguarded circuit cycle by cycle. *)

val demo_circuit : int -> Hlp_logic.Netlist.t
(** The paper's shared-datapath situation: [out = s ? (a & b) : (a + b)]
    bitwise-muxed, so the adder cone is unobservable when [s] is high (and
    the AND plane when it is low, via the existing inverter of [s]). *)
