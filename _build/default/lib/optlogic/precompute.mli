(** Precomputation-based shutdown (Section III-I, Fig. 6; Alidina et al.).

    For a single-output block [f(X)] and a chosen predictor subset [S] of
    its inputs, the predictor functions are the universal quantifications

    [g1 = forall (X \ S). f] and [g0 = forall (X \ S). not f]:

    when either holds, the output of [f] is already decided by [S] alone,
    the load-enable of the input register is dropped, and the block sees no
    transitions next cycle. The quality of a subset is the probability
    [P(g1 + g0)]; the cost is the predictor logic itself. *)

type plan = {
  subset : int list;  (** predictor input indices (netlist input positions) *)
  shutdown_prob : float;  (** [P(g1 or g0)] under uniform inputs *)
  predictor_nodes : int;  (** shared BDD size of [g1], [g0] — logic cost *)
}

val analyze :
  Hlp_logic.Netlist.t -> output:string -> subset:int list -> plan
(** Compute the predictors for one output and report their coverage.
    Requires a combinational netlist. *)

val best_subset :
  Hlp_logic.Netlist.t -> output:string -> size:int -> plan
(** Exhaustively try all input subsets of the given size (small inputs
    only) and return the best plan by shutdown probability. *)

type evaluation = {
  baseline_cap : float;  (** switched capacitance/cycle, unmanaged *)
  managed_cap : float;  (** with input-register gating + predictor cost *)
  saving : float;  (** [1 - managed/baseline] *)
  observed_shutdown : float;  (** fraction of cycles actually gated *)
}

val evaluate :
  ?cycles:int -> ?seed:int -> Hlp_logic.Netlist.t -> output:string -> plan -> evaluation
(** Simulate the precomputation architecture: each cycle the predictors are
    evaluated on the incoming vector; on a hit the block's inputs are held
    (no switching inside the block) and only the predictor logic switches.
    Functional equivalence of the gated output is asserted during the run. *)
