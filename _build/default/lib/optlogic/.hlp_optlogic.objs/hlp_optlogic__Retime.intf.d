lib/optlogic/retime.mli: Hlp_logic
