lib/optlogic/precompute.mli: Hlp_logic
