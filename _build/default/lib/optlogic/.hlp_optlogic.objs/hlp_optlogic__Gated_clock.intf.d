lib/optlogic/gated_clock.mli: Hlp_fsm
