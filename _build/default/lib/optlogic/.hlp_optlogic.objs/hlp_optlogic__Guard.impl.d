lib/optlogic/guard.ml: Array Hashtbl Hlp_bdd Hlp_logic Hlp_sim Hlp_util List Netlist Option Printf
