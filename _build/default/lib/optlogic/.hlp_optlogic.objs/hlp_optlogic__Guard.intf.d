lib/optlogic/guard.mli: Hlp_bdd Hlp_logic
