lib/optlogic/precompute.ml: Array Bdd_synth Hlp_bdd Hlp_logic Hlp_sim Hlp_util List Netlist
