lib/optlogic/bdd_synth.mli: Hlp_bdd Hlp_logic
