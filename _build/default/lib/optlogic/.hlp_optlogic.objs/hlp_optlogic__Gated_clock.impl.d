lib/optlogic/gated_clock.ml: Array Hlp_fsm Hlp_logic Hlp_sim Hlp_util Stg Synth
