lib/optlogic/retime.ml: Array Gate Hlp_logic Hlp_sim Hlp_util List Netlist
