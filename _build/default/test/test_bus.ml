open Hlp_bus

let all_static_schemes =
  [ Encoding.Binary; Encoding.Gray_code; Encoding.Bus_invert; Encoding.T0;
    Encoding.T0_bus_invert;
    Encoding.Working_zone { zones = 4; offset_bits = 4 } ]

let test_roundtrip_all_schemes () =
  let width = 16 in
  let rng = Hlp_util.Prng.create 1 in
  let streams =
    [
      Traces.sequential () ~width ~n:500;
      Traces.sequential_with_jumps rng ~jump_prob:0.1 ~width ~n:500;
      Traces.interleaved_arrays rng ~bases:[ 0x100; 0x8000; 0x4200 ] ~stride:1 ~width ~n:500;
      Traces.random_data rng ~width ~n:500;
      Traces.loop_kernel rng ~body:12 ~iterations:20 ~width;
    ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Encoding.scheme_name scheme ^ " roundtrip")
            true
            (Encoding.roundtrip scheme ~width s))
        streams)
    all_static_schemes

let test_beach_roundtrip () =
  let width = 16 in
  let rng = Hlp_util.Prng.create 2 in
  let train = Traces.loop_kernel rng ~body:12 ~iterations:40 ~width in
  let beach = Encoding.train_beach ~width train in
  List.iter
    (fun s ->
      Alcotest.(check bool) "beach roundtrip" true (Encoding.roundtrip beach ~width s))
    [ train; Traces.random_data rng ~width ~n:300 ]

let test_gray_single_transition_sequential () =
  let width = 16 in
  let s = Traces.sequential () ~width ~n:2000 in
  let r = Encoding.evaluate Encoding.Gray_code ~width s in
  Alcotest.(check (float 0.001)) "exactly 1 per address" 1.0 r.Encoding.per_word

let test_t0_zero_transitions_sequential () =
  let width = 16 in
  let s = Traces.sequential () ~width ~n:2000 in
  let r = Encoding.evaluate Encoding.T0 ~width s in
  (* INC rises once, then the bus is frozen: asymptotically zero *)
  Alcotest.(check bool)
    (Printf.sprintf "%d transitions total" r.Encoding.transitions)
    true
    (r.Encoding.transitions <= 2)

let test_binary_sequential_average () =
  (* counting: average transitions per increment tends to 2 *)
  let width = 16 in
  let s = Traces.sequential () ~width ~n:4000 in
  let r = Encoding.evaluate Encoding.Binary ~width s in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f near 2" r.Encoding.per_word)
    true
    (abs_float (r.Encoding.per_word -. 2.0) < 0.05)

let test_bus_invert_bound () =
  (* no clock cycle may toggle more than N/2 + 1 lines (N/2 data + INV) *)
  let width = 8 in
  let rng = Hlp_util.Prng.create 3 in
  let s = Traces.random_data rng ~width ~n:2000 in
  let bus = Encoding.transmit Encoding.Bus_invert ~width s in
  for i = 1 to Array.length bus - 1 do
    let t = Hlp_util.Bits.hamming bus.(i - 1) bus.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "cycle %d toggles %d" i t)
      true
      (t <= (width / 2) + 1)
  done

let test_bus_invert_beats_binary_on_random () =
  let width = 16 in
  let rng = Hlp_util.Prng.create 4 in
  let s = Traces.random_data rng ~width ~n:5000 in
  let b = Encoding.evaluate Encoding.Binary ~width s in
  let bi = Encoding.evaluate Encoding.Bus_invert ~width s in
  Alcotest.(check bool)
    (Printf.sprintf "bi %.2f < binary %.2f" bi.Encoding.per_word b.Encoding.per_word)
    true
    (bi.Encoding.per_word < b.Encoding.per_word)

let test_working_zone_beats_t0_on_interleaved () =
  let width = 16 in
  let rng = Hlp_util.Prng.create 5 in
  let s =
    Traces.interleaved_arrays rng ~bases:[ 0x0100; 0x8000; 0x4200; 0xC000 ]
      ~stride:1 ~width ~n:4000
  in
  let t0 = Encoding.evaluate Encoding.T0 ~width s in
  let wz =
    Encoding.evaluate (Encoding.Working_zone { zones = 4; offset_bits = 4 }) ~width s
  in
  let bin = Encoding.evaluate Encoding.Binary ~width s in
  Alcotest.(check bool)
    (Printf.sprintf "wz %.2f < t0 %.2f" wz.Encoding.per_word t0.Encoding.per_word)
    true
    (wz.Encoding.per_word < t0.Encoding.per_word);
  Alcotest.(check bool)
    (Printf.sprintf "wz %.2f < binary %.2f" wz.Encoding.per_word bin.Encoding.per_word)
    true
    (wz.Encoding.per_word < bin.Encoding.per_word)

let test_t0_beats_gray_on_jumpy_sequential () =
  (* with redundancy allowed, T0 outperforms the irredundant-optimal Gray *)
  let width = 16 in
  let rng = Hlp_util.Prng.create 6 in
  let s = Traces.sequential_with_jumps rng ~jump_prob:0.05 ~width ~n:5000 in
  let gray = Encoding.evaluate Encoding.Gray_code ~width s in
  let t0 = Encoding.evaluate Encoding.T0 ~width s in
  Alcotest.(check bool)
    (Printf.sprintf "t0 %.2f < gray %.2f" t0.Encoding.per_word gray.Encoding.per_word)
    true
    (t0.Encoding.per_word < gray.Encoding.per_word)

let test_beach_beats_binary_on_loop_trace () =
  let width = 16 in
  let rng = Hlp_util.Prng.create 7 in
  let train = Traces.loop_kernel rng ~body:12 ~iterations:60 ~width in
  let test = Traces.loop_kernel rng ~body:12 ~iterations:30 ~width in
  let beach = Encoding.train_beach ~width train in
  let b = Encoding.evaluate Encoding.Binary ~width test in
  let bc = Encoding.evaluate beach ~width test in
  Alcotest.(check bool)
    (Printf.sprintf "beach %.2f < binary %.2f" bc.Encoding.per_word b.Encoding.per_word)
    true
    (bc.Encoding.per_word < b.Encoding.per_word)

let test_extra_lines_accounting () =
  Alcotest.(check int) "binary" 0 (Encoding.extra_lines Encoding.Binary);
  Alcotest.(check int) "bi" 1 (Encoding.extra_lines Encoding.Bus_invert);
  Alcotest.(check int) "t0+bi" 2 (Encoding.extra_lines Encoding.T0_bus_invert);
  let width = 16 in
  let s = Traces.sequential () ~width ~n:10 in
  let r = Encoding.evaluate Encoding.T0 ~width s in
  Alcotest.(check int) "t0 lines" 17 r.Encoding.lines

let qcheck_roundtrip_random =
  QCheck.Test.make ~name:"all schemes decode what they encode" ~count:50
    QCheck.(pair (int_bound 100_000) (int_range 2 200))
    (fun (seed, n) ->
      let width = 12 in
      let rng = Hlp_util.Prng.create seed in
      let s = Traces.random_data rng ~width ~n in
      List.for_all (fun scheme -> Encoding.roundtrip scheme ~width s) all_static_schemes)

let qcheck_bus_invert_never_worse =
  QCheck.Test.make ~name:"bus-invert data lines toggle at most binary's" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let width = 8 in
      let rng = Hlp_util.Prng.create seed in
      let s = Traces.random_data rng ~width ~n:300 in
      let bin = Encoding.evaluate Encoding.Binary ~width s in
      let bi = Encoding.evaluate Encoding.Bus_invert ~width s in
      (* including the INV line it can tie or lose slightly, but data-line
         transitions alone can never exceed binary + n (INV toggles) *)
      bi.Encoding.transitions <= bin.Encoding.transitions + 300)

let suite =
  [
    Alcotest.test_case "roundtrip all schemes" `Quick test_roundtrip_all_schemes;
    Alcotest.test_case "beach roundtrip" `Quick test_beach_roundtrip;
    Alcotest.test_case "gray 1/address sequential" `Quick test_gray_single_transition_sequential;
    Alcotest.test_case "t0 zero transitions" `Quick test_t0_zero_transitions_sequential;
    Alcotest.test_case "binary sequential ~2" `Quick test_binary_sequential_average;
    Alcotest.test_case "bus-invert bound" `Quick test_bus_invert_bound;
    Alcotest.test_case "bus-invert beats binary" `Quick test_bus_invert_beats_binary_on_random;
    Alcotest.test_case "working-zone beats t0" `Quick test_working_zone_beats_t0_on_interleaved;
    Alcotest.test_case "t0 beats gray with jumps" `Quick test_t0_beats_gray_on_jumpy_sequential;
    Alcotest.test_case "beach beats binary" `Quick test_beach_beats_binary_on_loop_trace;
    Alcotest.test_case "extra lines" `Quick test_extra_lines_accounting;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_random;
    QCheck_alcotest.to_alcotest qcheck_bus_invert_never_worse;
  ]
