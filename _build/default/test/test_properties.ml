(* Cross-library property tests: broad randomized invariants that tie the
   substrates together. *)

open Hlp_util

let qcheck_random_netlists_validate =
  QCheck.Test.make ~name:"random netlists validate and simulate deterministically"
    ~count:25
    QCheck.(pair (int_bound 10_000) (int_range 20 150))
    (fun (seed, gates) ->
      let rng = Prng.create seed in
      let net = Hlp_logic.Generators.random_logic rng ~inputs:6 ~outputs:3 ~gates in
      Hlp_logic.Netlist.validate net;
      let run () =
        let sim = Hlp_sim.Funcsim.create net in
        let r = Prng.create (seed + 1) in
        Hlp_sim.Funcsim.run sim (fun _ -> Array.init 6 (fun _ -> Prng.bool r)) 50;
        Hlp_sim.Funcsim.switched_capacitance sim
      in
      run () = run ())

let qcheck_eventsim_functionally_equals_funcsim =
  QCheck.Test.make ~name:"event-driven settle equals zero-delay settle on random logic"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let net = Hlp_logic.Generators.random_logic rng ~inputs:5 ~outputs:3 ~gates:60 in
      let fsim = Hlp_sim.Funcsim.create net in
      let esim = Hlp_sim.Eventsim.create net in
      let r = Prng.create (seed + 7) in
      let ok = ref true in
      for _ = 1 to 40 do
        let vec = Array.init 5 (fun _ -> Prng.bool r) in
        Hlp_sim.Funcsim.step fsim vec;
        Hlp_sim.Eventsim.step esim vec;
        Array.iter
          (fun (_, w) ->
            if Hlp_sim.Funcsim.value fsim w <> Hlp_sim.Eventsim.value esim w then
              ok := false)
          net.Hlp_logic.Netlist.outputs
      done;
      !ok)

let qcheck_bdd_shannon_cofactor =
  QCheck.Test.make ~name:"f = x f|x=1 + x' f|x=0 on random functions" ~count:40
    QCheck.(pair (int_bound 255) (int_bound 2))
    (fun (tt, v) ->
      let m = Hlp_bdd.Bdd.manager () in
      let f = ref (Hlp_bdd.Bdd.zero m) in
      for minterm = 0 to 7 do
        if Bits.bit tt minterm then begin
          let cube =
            Hlp_bdd.Bdd.conj m
              (List.init 3 (fun b ->
                   if Bits.bit minterm b then Hlp_bdd.Bdd.var m b
                   else Hlp_bdd.Bdd.nvar m b))
          in
          f := Hlp_bdd.Bdd.or_ m !f cube
        end
      done;
      let hi = Hlp_bdd.Bdd.cofactor m !f ~var:v true in
      let lo = Hlp_bdd.Bdd.cofactor m !f ~var:v false in
      let recomposed =
        Hlp_bdd.Bdd.or_ m
          (Hlp_bdd.Bdd.and_ m (Hlp_bdd.Bdd.var m v) hi)
          (Hlp_bdd.Bdd.and_ m (Hlp_bdd.Bdd.nvar m v) lo)
      in
      Hlp_bdd.Bdd.equal recomposed !f)

let qcheck_bdd_quantifier_duality =
  QCheck.Test.make ~name:"forall x f = not (exists x (not f))" ~count:40
    QCheck.(pair (int_bound 255) (int_bound 2))
    (fun (tt, v) ->
      let m = Hlp_bdd.Bdd.manager () in
      let f = ref (Hlp_bdd.Bdd.zero m) in
      for minterm = 0 to 7 do
        if Bits.bit tt minterm then begin
          let cube =
            Hlp_bdd.Bdd.conj m
              (List.init 3 (fun b ->
                   if Bits.bit minterm b then Hlp_bdd.Bdd.var m b
                   else Hlp_bdd.Bdd.nvar m b))
          in
          f := Hlp_bdd.Bdd.or_ m !f cube
        end
      done;
      let lhs = Hlp_bdd.Bdd.forall m [ v ] !f in
      let rhs =
        Hlp_bdd.Bdd.not_ m (Hlp_bdd.Bdd.exists m [ v ] (Hlp_bdd.Bdd.not_ m !f))
      in
      Hlp_bdd.Bdd.equal lhs rhs)

let qcheck_anneal_no_worse_than_random =
  QCheck.Test.make ~name:"annealed encoding beats a random encoding" ~count:10
    QCheck.(int_range 5 14)
    (fun states ->
      let rng = Prng.create (states * 31) in
      let stg = Hlp_fsm.Stg.random_fsm rng ~states ~input_bits:1 ~output_bits:1 in
      let dist = Hlp_fsm.Markov.analyze stg in
      let annealed = Hlp_fsm.Encode.anneal ~iterations:3000 rng stg dist in
      let random = Hlp_fsm.Encode.random (Prng.create 1) stg in
      Hlp_fsm.Encode.cost stg dist annealed
      <= Hlp_fsm.Encode.cost stg dist random +. 1e-9)

let qcheck_propagate_probabilities_in_range =
  QCheck.Test.make ~name:"propagated probabilities and activities stay in [0,1]"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let net = Hlp_logic.Generators.random_logic rng ~inputs:6 ~outputs:2 ~gates:80 in
      let stats = Hlp_power.Probprop.propagate net in
      Array.for_all (fun p -> p >= 0.0 && p <= 1.0) stats.Hlp_power.Probprop.prob
      && Array.for_all (fun a -> a >= 0.0 && a <= 1.0) stats.Hlp_power.Probprop.activity)

let qcheck_sram_energy_positive_and_convex_ish =
  QCheck.Test.make ~name:"sram read energy positive for all organizations" ~count:20
    QCheck.(int_range 6 16)
    (fun n ->
      List.for_all
        (fun k -> Hlp_power.Memory_model.read_energy (Hlp_power.Memory_model.default_sram ~n ~k) > 0.0)
        (List.init (n + 1) (fun k -> k)))

let qcheck_voltage_assignment_verifies =
  QCheck.Test.make ~name:"voltage schedules verify at any feasible deadline" ~count:15
    QCheck.(float_range 1.0 4.0)
    (fun stretch ->
      let g = Hlp_rtl.Cdfg.diffeq () in
      let base = Hlp_rtl.Voltage.single_voltage g in
      match Hlp_rtl.Voltage.schedule g ~deadline:(base.Hlp_rtl.Voltage.total_delay *. stretch) with
      | None -> false
      | Some asg ->
          Hlp_rtl.Voltage.verify g asg;
          asg.Hlp_rtl.Voltage.total_delay
          <= (base.Hlp_rtl.Voltage.total_delay *. stretch) +. 1e-6)

let qcheck_verilog_always_parses_shape =
  QCheck.Test.make ~name:"verilog export is well-formed for random logic" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let net = Hlp_logic.Generators.random_logic rng ~inputs:5 ~outputs:2 ~gates:40 in
      let v = Hlp_logic.Export.to_verilog net in
      String.length v > 100
      && String.sub v 0 2 = "//"
      && (let count_sub needle =
            let n = String.length v and m = String.length needle in
            let c = ref 0 in
            for i = 0 to n - m do
              if String.sub v i m = needle then incr c
            done;
            !c
          in
          count_sub "module" = count_sub "endmodule" + 1))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_random_netlists_validate;
    QCheck_alcotest.to_alcotest qcheck_eventsim_functionally_equals_funcsim;
    QCheck_alcotest.to_alcotest qcheck_bdd_shannon_cofactor;
    QCheck_alcotest.to_alcotest qcheck_bdd_quantifier_duality;
    QCheck_alcotest.to_alcotest qcheck_anneal_no_worse_than_random;
    QCheck_alcotest.to_alcotest qcheck_propagate_probabilities_in_range;
    QCheck_alcotest.to_alcotest qcheck_sram_energy_positive_and_convex_ish;
    QCheck_alcotest.to_alcotest qcheck_voltage_assignment_verifies;
    QCheck_alcotest.to_alcotest qcheck_verilog_always_parses_shape;
  ]
