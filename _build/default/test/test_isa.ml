open Hlp_isa

let run_named (prog, mem) = Machine.run ~mem_init:mem prog

let test_encode_distinct () =
  let instrs =
    [ Isa.Add (1, 2, 3); Isa.Sub (1, 2, 3); Isa.Mul (1, 2, 3); Isa.Nop;
      Isa.Halt; Isa.Ld (1, 2, 5); Isa.St (1, 2, 5); Isa.Beq (1, 2, 5) ]
  in
  let encs = List.map Isa.encode instrs in
  Alcotest.(check int) "all distinct" (List.length instrs)
    (List.length (List.sort_uniq compare encs))

let test_validate_rejects_bad () =
  Alcotest.(check bool) "bad register" true
    (try Isa.validate_program [| Isa.Add (9, 0, 0) |]; false with Failure _ -> true);
  Alcotest.(check bool) "branch out of range" true
    (try Isa.validate_program [| Isa.Beq (0, 0, 100) |]; false with Failure _ -> true)

let test_machine_arithmetic () =
  let prog =
    [| Isa.Addi (1, 0, 21); Isa.Addi (2, 0, 2); Isa.Mul (3, 1, 2);
       Isa.Addi (3, 3, -2); Isa.Halt |]
  in
  let r = Machine.run prog in
  Alcotest.(check bool) "halted" true r.Machine.halted;
  Alcotest.(check int) "42 - 2" 40 r.Machine.regs.(3)

let test_machine_r0_is_zero () =
  let prog = [| Isa.Addi (0, 0, 99); Isa.Add (1, 0, 0); Isa.Halt |] in
  let r = Machine.run prog in
  Alcotest.(check int) "r0 write discarded" 0 r.Machine.regs.(1)

let test_machine_memory () =
  let prog =
    [| Isa.Addi (1, 0, 7); Isa.St (1, 0, 100); Isa.Ld (2, 0, 100); Isa.Halt |]
  in
  let r, read = Machine.run_with_memory prog in
  Alcotest.(check int) "store/load" 7 r.Machine.regs.(2);
  Alcotest.(check int) "memory content" 7 (read 100)

let test_machine_branches () =
  (* count down from 5: r2 accumulates 5+4+3+2+1 = 15 *)
  let prog =
    Asm.assemble
      [
        Asm.Ins (Isa.Addi (1, 0, 5));
        Asm.Label "loop";
        Asm.Ins (Isa.Add (2, 2, 1));
        Asm.Ins (Isa.Addi (1, 1, -1));
        Asm.Bne_l (1, 0, "loop");
        Asm.Ins Isa.Halt;
      ]
  in
  let r = Machine.run prog in
  Alcotest.(check int) "sum" 15 r.Machine.regs.(2)

let test_machine_counters_consistent () =
  let r = run_named (Programs.matmul ~n:6) in
  let c = r.Machine.counters in
  Alcotest.(check bool) "halted" true r.Machine.halted;
  let class_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 c.Machine.class_counts
  in
  Alcotest.(check int) "class counts sum to instructions" c.Machine.instructions class_total;
  let pair_total = List.fold_left (fun acc (_, n) -> acc + n) 0 c.Machine.pair_counts in
  Alcotest.(check int) "pairs are instructions - 1" (c.Machine.instructions - 1) pair_total;
  Alcotest.(check bool) "cycles >= instructions" true (c.Machine.cycles >= c.Machine.instructions);
  Alcotest.(check bool) "energy positive" true (r.Machine.energy > 0.0)

let test_matmul_correct () =
  let n = 4 in
  let prog, mem = Programs.matmul ~n in
  let r, read = Machine.run_with_memory ~mem_init:mem prog in
  Alcotest.(check bool) "halted" true r.Machine.halted;
  let a i j = List.assoc ((i * n) + j) mem in
  let b i j = List.assoc ((n * n) + (i * n) + j) mem in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expect = List.fold_left (fun acc k -> acc + (a i k * b k j)) 0 (List.init n Fun.id) in
      Alcotest.(check int) (Printf.sprintf "C[%d][%d]" i j) expect
        (read ((2 * n * n) + (i * n) + j))
    done
  done

let test_bubble_sort_correct () =
  let n = 20 in
  let prog, mem = Programs.bubble_sort ~n in
  let r, read = Machine.run_with_memory ~mem_init:mem prog in
  Alcotest.(check bool) "halted" true r.Machine.halted;
  let sorted = List.sort compare (List.map snd mem) in
  List.iteri
    (fun i expect -> Alcotest.(check int) (Printf.sprintf "elem %d" i) expect (read i))
    sorted

let test_fig2_same_result_less_memory () =
  let n = 128 in
  let r_mem = run_named (Programs.fig2_memory ~n) in
  let r_reg = run_named (Programs.fig2_register ~n) in
  Alcotest.(check int) "same sum" r_mem.Machine.regs.(7) r_reg.Machine.regs.(7);
  let accesses r =
    r.Machine.counters.Machine.mem_reads + r.Machine.counters.Machine.mem_writes
  in
  (* left form: 3n accesses (read a, write b, read b); right form: n *)
  Alcotest.(check int) "memory form 3n" (3 * n) (accesses r_mem);
  Alcotest.(check int) "register form n" n (accesses r_reg);
  Alcotest.(check bool) "energy drops" true (r_reg.Machine.energy < r_mem.Machine.energy)

let test_tiwari_generalizes () =
  (* train on synthetic profile sweeps, test on the real applications *)
  let rng = Hlp_util.Prng.create 51 in
  let training =
    List.init 24 (fun i ->
        (* random profiles spanning the feature space *)
        let profile =
          {
            Profile.mix =
              (let m = 0.1 +. Hlp_util.Prng.float rng 0.3 in
               let mul = Hlp_util.Prng.float rng 0.2 in
               let br = 0.05 +. Hlp_util.Prng.float rng 0.15 in
               let alu = max 0.0 (1.0 -. m -. mul -. br) in
               [ (Isa.Alu, alu); (Isa.Mulc, mul); (Isa.Mem, m); (Isa.Branch, br);
                 (Isa.Other, 0.0) ]);
            icache_miss_rate = 0.01;
            dcache_miss_rate = Hlp_util.Prng.float rng 0.8;
            branch_taken_rate = Hlp_util.Prng.float rng 1.0;
            stall_rate = Hlp_util.Prng.float rng 0.2;
            energy_per_cycle = 0.0;
            instructions = 0;
          }
        in
        Profile.synthesize ~seed:(1000 + i) profile)
  in
  let model = Tiwari.fit training in
  let apps = List.map snd (Programs.all ()) in
  let err = Tiwari.evaluate model apps in
  Alcotest.(check bool)
    (Printf.sprintf "tiwari error on apps %.3f < 0.25" err)
    true (err < 0.25);
  (* the multiplier base cost must exceed the plain-alu base cost *)
  let coeff name = List.assoc name (Tiwari.coefficients model) in
  Alcotest.(check bool) "mul costs more than alu" true (coeff "base_mul" > coeff "base_alu")

let test_profile_extract_sane () =
  let r = run_named (Programs.fir ~taps:8 ~samples:128) in
  let p = Profile.extract r in
  let mix_total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 p.Profile.mix in
  Alcotest.(check (float 1e-6)) "mix sums to 1" 1.0 mix_total;
  Alcotest.(check bool) "rates in range" true
    (p.Profile.dcache_miss_rate >= 0.0 && p.Profile.dcache_miss_rate <= 1.0
    && p.Profile.branch_taken_rate >= 0.0
    && p.Profile.branch_taken_rate <= 1.0)

let test_profile_synthesis_matches_power () =
  List.iter
    (fun (name, (prog, mem)) ->
      let r = Machine.run ~mem_init:mem prog in
      let v = Profile.validate r () in
      Alcotest.(check bool)
        (Printf.sprintf "%s energy error %.3f < 0.15" name v.Profile.energy_error)
        true
        (v.Profile.energy_error < 0.15))
    [ ("matmul", Programs.matmul ~n:10); ("fir", Programs.fir ~taps:8 ~samples:256);
      ("sort", Programs.bubble_sort ~n:48) ]

let test_profile_synthesis_shortens_trace () =
  let prog, mem = Programs.matmul ~n:16 in
  let r = Machine.run ~mem_init:mem prog in
  let v = Profile.validate r () in
  Alcotest.(check bool)
    (Printf.sprintf "reduction %.0fx > 3x" v.Profile.trace_reduction)
    true
    (v.Profile.trace_reduction > 3.0)

let qcheck_machine_never_diverges =
  QCheck.Test.make ~name:"synthetic programs halt within budget" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let profile =
        {
          Profile.mix =
            [ (Isa.Alu, 0.5); (Isa.Mulc, 0.1); (Isa.Mem, 0.25); (Isa.Branch, 0.15);
              (Isa.Other, 0.0) ];
          icache_miss_rate = 0.01;
          dcache_miss_rate = 0.3;
          branch_taken_rate = 0.4;
          stall_rate = 0.1;
          energy_per_cycle = 0.0;
          instructions = 0;
        }
      in
      let prog, mem = Profile.synthesize ~seed profile in
      let r = Machine.run ~mem_init:mem prog in
      r.Machine.halted)

let suite =
  [
    Alcotest.test_case "encode distinct" `Quick test_encode_distinct;
    Alcotest.test_case "validate rejects bad" `Quick test_validate_rejects_bad;
    Alcotest.test_case "machine arithmetic" `Quick test_machine_arithmetic;
    Alcotest.test_case "machine r0" `Quick test_machine_r0_is_zero;
    Alcotest.test_case "machine memory" `Quick test_machine_memory;
    Alcotest.test_case "machine branches" `Quick test_machine_branches;
    Alcotest.test_case "machine counters" `Quick test_machine_counters_consistent;
    Alcotest.test_case "matmul correct" `Quick test_matmul_correct;
    Alcotest.test_case "bubble sort correct" `Quick test_bubble_sort_correct;
    Alcotest.test_case "fig2 memory vs register" `Quick test_fig2_same_result_less_memory;
    Alcotest.test_case "tiwari generalizes" `Slow test_tiwari_generalizes;
    Alcotest.test_case "profile extract" `Quick test_profile_extract_sane;
    Alcotest.test_case "profile synthesis power" `Slow test_profile_synthesis_matches_power;
    Alcotest.test_case "profile synthesis shortens" `Quick test_profile_synthesis_shortens_trace;
    QCheck_alcotest.to_alcotest qcheck_machine_never_diverges;
  ]
