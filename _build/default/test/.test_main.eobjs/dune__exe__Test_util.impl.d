test/test_util.ml: Alcotest Array Bits Gen Hashtbl Heap Hlp_util Linalg List Option Prng QCheck QCheck_alcotest Stats String Table
