test/test_pm.ml: Alcotest Array Hlp_pm Hlp_util List Multistate Policy Printf QCheck QCheck_alcotest
