test/test_optlogic.ml: Alcotest Array Bdd_synth Gated_clock Guard Hlp_bdd Hlp_fsm Hlp_logic Hlp_optlogic Hlp_sim Hlp_util List Precompute Printf QCheck QCheck_alcotest Retime
