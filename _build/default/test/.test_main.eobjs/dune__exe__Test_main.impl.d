test/test_main.ml: Alcotest Test_bdd Test_bus Test_extensions Test_fsm Test_isa Test_logic Test_optlogic Test_pm Test_power Test_properties Test_rtl Test_sim Test_util
