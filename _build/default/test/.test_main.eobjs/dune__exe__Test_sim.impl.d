test/test_sim.ml: Activity Alcotest Array Eventsim Funcsim Generators Hlp_logic Hlp_sim Hlp_util Netlist Printf QCheck QCheck_alcotest Streams
