test/test_isa.ml: Alcotest Array Asm Fun Hlp_isa Hlp_util Isa List Machine Printf Profile Programs QCheck QCheck_alcotest Tiwari
