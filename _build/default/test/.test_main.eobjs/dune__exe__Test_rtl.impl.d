test/test_rtl.ml: Alcotest Allocate Array Cdfg Fir Gen Hlp_logic Hlp_rtl Hlp_sim Hlp_util List Module_energy Option Printf QCheck QCheck_alcotest Quicksynth Schedule Transform Voltage
