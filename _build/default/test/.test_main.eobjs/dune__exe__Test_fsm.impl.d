test/test_fsm.ml: Alcotest Array Encode Fun Hlp_bdd Hlp_fsm Hlp_sim Hlp_util List Markov Minimize Printf QCheck QCheck_alcotest Stg Symbolic Synth Tyagi
