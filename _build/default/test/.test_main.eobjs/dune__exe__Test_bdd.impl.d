test/test_bdd.ml: Alcotest Bdd Hlp_bdd Hlp_logic Hlp_util List QCheck QCheck_alcotest String
