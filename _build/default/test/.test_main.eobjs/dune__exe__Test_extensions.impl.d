test/test_extensions.ml: Alcotest Array Coldsched Hlp_bus Hlp_fsm Hlp_isa Hlp_logic Hlp_power Hlp_rtl Hlp_sim Hlp_util Isa List Printf QCheck QCheck_alcotest
