test/test_bus.ml: Alcotest Array Encoding Hlp_bus Hlp_util List Printf QCheck QCheck_alcotest Traces
