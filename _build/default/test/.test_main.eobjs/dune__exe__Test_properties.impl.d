test/test_properties.ml: Array Bits Hlp_bdd Hlp_fsm Hlp_logic Hlp_power Hlp_rtl Hlp_sim Hlp_util List Prng QCheck QCheck_alcotest String
