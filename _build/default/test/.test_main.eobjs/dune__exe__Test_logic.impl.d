test/test_logic.ml: Alcotest Array Export Gate Generators Hlp_bdd Hlp_logic Hlp_util List Netlist Printf QCheck QCheck_alcotest String
