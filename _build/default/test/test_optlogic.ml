open Hlp_optlogic

(* --- precomputation --- *)

let test_precompute_max_msb () =
  (* the classic example: predicting max(a,b)'s comparator from the two
     MSBs decides it in half the cases — here we precompute the lt output
     of a comparator *)
  let n = 6 in
  let net = Hlp_logic.Generators.comparator_circuit n in
  (* inputs a0..a5 b0..b5: MSBs are positions 5 and 11 *)
  let plan = Precompute.analyze net ~output:"lt" ~subset:[ n - 1; (2 * n) - 1 ] in
  Alcotest.(check (float 0.01)) "msb pair decides half the time" 0.5
    plan.Precompute.shutdown_prob

let test_precompute_best_subset () =
  let n = 5 in
  let net = Hlp_logic.Generators.comparator_circuit n in
  let best = Precompute.best_subset net ~output:"lt" ~size:2 in
  (* nothing beats the MSB pair for a comparator *)
  Alcotest.(check (float 0.01)) "best is 0.5" 0.5 best.Precompute.shutdown_prob;
  Alcotest.(check bool) "best subset is the msbs" true
    (List.sort compare best.Precompute.subset = [ n - 1; (2 * n) - 1 ])

let test_precompute_evaluate_saves () =
  let n = 8 in
  let net = Hlp_logic.Generators.comparator_circuit n in
  let plan = Precompute.analyze net ~output:"lt" ~subset:[ n - 1; (2 * n) - 1 ] in
  let ev = Precompute.evaluate net ~output:"lt" plan in
  Alcotest.(check bool)
    (Printf.sprintf "observed shutdown %.2f near 0.5" ev.Precompute.observed_shutdown)
    true
    (abs_float (ev.Precompute.observed_shutdown -. 0.5) < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "saving %.2f positive" ev.Precompute.saving)
    true (ev.Precompute.saving > 0.1)

let test_precompute_full_subset_is_total () =
  (* predicting from all inputs always hits (but costs a duplicate block) *)
  let n = 4 in
  let net = Hlp_logic.Generators.comparator_circuit n in
  let all = List.init (2 * n) (fun i -> i) in
  let plan = Precompute.analyze net ~output:"lt" ~subset:all in
  Alcotest.(check (float 1e-9)) "always" 1.0 plan.Precompute.shutdown_prob

let test_precompute_empty_subset_trivial () =
  let n = 4 in
  let net = Hlp_logic.Generators.comparator_circuit n in
  let plan = Precompute.analyze net ~output:"lt" ~subset:[] in
  (* a non-constant function cannot be predicted from nothing *)
  Alcotest.(check (float 1e-9)) "never" 0.0 plan.Precompute.shutdown_prob

(* --- gated clock --- *)

let test_gated_clock_reactive_saves () =
  let stg = Hlp_fsm.Stg.reactive ~wait_states:4 ~burst_states:4 in
  (* rare requests: the machine self-loops most of the time *)
  let ev = Gated_clock.evaluate ~input_one_prob:0.03 stg in
  Alcotest.(check bool)
    (Printf.sprintf "idle fraction %.2f high" ev.Gated_clock.idle_fraction)
    true (ev.Gated_clock.idle_fraction > 0.6);
  Alcotest.(check bool)
    (Printf.sprintf "saving %.2f positive" ev.Gated_clock.saving)
    true (ev.Gated_clock.saving > 0.1)

let test_gated_clock_busy_machine_no_win () =
  (* an always-enabled counter never self-loops: gating can only lose *)
  let stg = Hlp_fsm.Stg.counter_fsm ~bits:3 in
  let ev = Gated_clock.evaluate ~input_one_prob:1.0 stg in
  Alcotest.(check (float 0.01)) "no idleness" 0.0 ev.Gated_clock.idle_fraction;
  Alcotest.(check bool) "no saving" true (ev.Gated_clock.saving <= 0.0)

let test_gated_clock_saving_monotone_in_idleness () =
  let stg = Hlp_fsm.Stg.reactive ~wait_states:4 ~burst_states:4 in
  let busy = Gated_clock.evaluate ~input_one_prob:0.5 stg in
  let quiet = Gated_clock.evaluate ~input_one_prob:0.02 stg in
  Alcotest.(check bool) "quieter = more idle" true
    (quiet.Gated_clock.idle_fraction > busy.Gated_clock.idle_fraction);
  Alcotest.(check bool) "quieter = more saving" true
    (quiet.Gated_clock.saving > busy.Gated_clock.saving)

(* --- guarded evaluation --- *)

let test_odc_mux_structure () =
  (* in out = s ? y : x, the ODC of x is exactly s *)
  let module B = Hlp_logic.Netlist.Builder in
  let b = B.create () in
  let s = B.input ~name:"s" b in
  let x0 = B.input ~name:"x0" b and x1 = B.input ~name:"x1" b in
  let y = B.input ~name:"y" b in
  let x = B.and_ b [ x0; x1 ] in
  let o = B.mux b ~sel:s ~a0:x ~a1:y in
  B.output b "o" o;
  let net = B.finish b in
  let man = Hlp_bdd.Bdd.manager () in
  let odc_x = Guard.odc net ~wire:x man in
  (* s is input 0 = BDD variable 0 *)
  Alcotest.(check bool) "odc(x) = s" true
    (Hlp_bdd.Bdd.equal odc_x (Hlp_bdd.Bdd.var man 0))

let test_guard_candidates_on_demo () =
  let net = Guard.demo_circuit 6 in
  let cands = Guard.find_candidates net in
  Alcotest.(check bool) "found candidates" true (cands <> []);
  let best = List.hd cands in
  Alcotest.(check bool) "guard prob ~ 0.5" true
    (abs_float (best.Guard.guard_prob -. 0.5) < 0.01);
  Alcotest.(check bool) "cone nontrivial" true
    (Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 best.Guard.cone >= 6)

let test_guard_evaluate_saves_and_is_correct () =
  let net = Guard.demo_circuit 8 in
  match Guard.find_candidates net with
  | [] -> Alcotest.fail "no candidates"
  | best :: _ ->
      (* evaluate asserts output equality internally *)
      let ev = Guard.evaluate net best in
      Alcotest.(check bool)
        (Printf.sprintf "frozen %.2f near guard prob" ev.Guard.frozen_fraction)
        true
        (abs_float (ev.Guard.frozen_fraction -. best.Guard.guard_prob) < 0.05);
      Alcotest.(check bool)
        (Printf.sprintf "saving %.2f positive" ev.Guard.saving)
        true (ev.Guard.saving > 0.05)

let test_guard_both_arms_found () =
  (* the demo has an inverter of s, so both the adder (guard s) and the
     and-plane (guard not s) should be guardable *)
  let net = Guard.demo_circuit 6 in
  let cands = Guard.find_candidates net in
  Alcotest.(check bool) "two or more candidates" true (List.length cands >= 2)

(* --- bdd synthesis --- *)

let test_bdd_synth_equivalence () =
  let m = Hlp_bdd.Bdd.manager () in
  let x = Hlp_bdd.Bdd.var m 0 and y = Hlp_bdd.Bdd.var m 1 and z = Hlp_bdd.Bdd.var m 2 in
  let f1 = Hlp_bdd.Bdd.or_ m (Hlp_bdd.Bdd.and_ m x y) (Hlp_bdd.Bdd.xor_ m y z) in
  let f2 = Hlp_bdd.Bdd.ite m x z (Hlp_bdd.Bdd.not_ m y) in
  let net = Bdd_synth.netlist_of_bdds ~nvars:3 [ f1; f2 ] in
  Alcotest.(check bool) "mux network equivalent" true
    (Bdd_synth.check_equivalence ~nvars:3 [ f1; f2 ] net)

let test_bdd_synth_sharing () =
  (* a shared BDD node becomes a single mux: netlist mux count equals the
     BDD node count per root *)
  let m = Hlp_bdd.Bdd.manager () in
  let f = ref (Hlp_bdd.Bdd.zero m) in
  for i = 0 to 5 do
    f := Hlp_bdd.Bdd.xor_ m !f (Hlp_bdd.Bdd.var m i)
  done;
  let net = Bdd_synth.netlist_of_bdds ~nvars:6 [ !f ] in
  let muxes =
    Array.fold_left
      (fun acc (node : Hlp_logic.Netlist.node) ->
        match node.Hlp_logic.Netlist.kind with
        | Hlp_logic.Gate.Mux -> acc + 1
        | _ -> acc)
      0 net.Hlp_logic.Netlist.nodes
  in
  Alcotest.(check int) "one mux per bdd node" (Hlp_bdd.Bdd.size !f) muxes

let test_bdd_synth_adder_roundtrip () =
  (* netlist -> BDD -> mux netlist: still the adder *)
  let n = 4 in
  let src = Hlp_logic.Generators.adder_circuit n in
  let m = Hlp_bdd.Bdd.manager () in
  let roots = List.map snd (Hlp_bdd.Bdd.of_netlist m src) in
  let net = Bdd_synth.netlist_of_bdds ~nvars:(2 * n) roots in
  Alcotest.(check bool) "roundtrip equivalent" true
    (Bdd_synth.check_equivalence ~nvars:(2 * n) roots net)

(* --- retiming --- *)

let test_pipeline_preserves_function () =
  let n = 5 in
  let net = Hlp_logic.Generators.multiplier_circuit n in
  let piped = Retime.pipeline_at_depth net ~depth:4 in
  Alcotest.(check bool) "has registers" true (Hlp_logic.Netlist.num_dffs piped > 0);
  (* pipelined output at cycle t equals combinational output of cycle t-1 *)
  let sim_ref = Hlp_sim.Funcsim.create net in
  let sim_pipe = Hlp_sim.Funcsim.create piped in
  let rng = Hlp_util.Prng.create 3 in
  let prev_expected = ref None in
  for _ = 1 to 100 do
    let a = Hlp_util.Prng.int rng 32 and b = Hlp_util.Prng.int rng 32 in
    let vec =
      Array.init (2 * n) (fun i ->
          if i < n then Hlp_util.Bits.bit a i else Hlp_util.Bits.bit b (i - n))
    in
    Hlp_sim.Funcsim.step sim_ref vec;
    Hlp_sim.Funcsim.step sim_pipe vec;
    (match !prev_expected with
    | Some p ->
        Alcotest.(check int) "delayed by one" p
          (Hlp_sim.Funcsim.output_word sim_pipe ~prefix:"p")
    | None -> ());
    prev_expected := Some (Hlp_sim.Funcsim.output_word sim_ref ~prefix:"p")
  done

let test_glitch_profile_nonzero_on_multiplier () =
  let net = Hlp_logic.Generators.multiplier_circuit 6 in
  let prof = Retime.glitch_profile ~cycles:200 net in
  let total = Array.fold_left ( +. ) 0.0 prof in
  Alcotest.(check bool) "multipliers glitch" true (total > 0.0)

let test_retiming_reduces_glitch_cap () =
  (* registering after the multiplier's glitchy middle should beat both the
     input cut and the output cut on glitch capacitance *)
  let net = Hlp_logic.Generators.multiplier_circuit 6 in
  let cuts = Retime.best_cut ~cycles:300 net ~max_depth:(Hlp_logic.Netlist.logic_depth net) in
  let by_depth d = List.find (fun e -> e.Retime.depth = d) cuts in
  let input_cut = by_depth 0 in
  let best =
    List.fold_left (fun acc e -> if e.Retime.total_cap < acc.Retime.total_cap then e else acc)
      input_cut cuts
  in
  Alcotest.(check bool)
    (Printf.sprintf "interior cut (depth %d) beats input cut" best.Retime.depth)
    true
    (best.Retime.depth > 0 && best.Retime.total_cap < input_cut.Retime.total_cap);
  Alcotest.(check bool) "best reduces glitches vs input cut" true
    (best.Retime.glitch_cap < input_cut.Retime.glitch_cap)

let test_register_count_varies_with_cut () =
  let net = Hlp_logic.Generators.multiplier_circuit 5 in
  let e1 = Retime.evaluate_cut ~cycles:50 net ~depth:0 in
  let e2 = Retime.evaluate_cut ~cycles:50 net ~depth:12 in
  Alcotest.(check bool) "both have registers" true
    (e1.Retime.registers > 0 && e2.Retime.registers > 0);
  Alcotest.(check bool) "register counts differ" true
    (e1.Retime.registers <> e2.Retime.registers)

let test_balance_paths_function_and_glitches () =
  let net = Hlp_logic.Generators.multiplier_circuit 6 in
  let balanced = Retime.balance_paths net in
  (* function preserved *)
  let s1 = Hlp_sim.Funcsim.create net and s2 = Hlp_sim.Funcsim.create balanced in
  let rng = Hlp_util.Prng.create 3 in
  for _ = 1 to 150 do
    let vec = Array.init 12 (fun _ -> Hlp_util.Prng.bool rng) in
    Hlp_sim.Funcsim.step s1 vec;
    Hlp_sim.Funcsim.step s2 vec;
    Alcotest.(check int) "same product"
      (Hlp_sim.Funcsim.output_word s1 ~prefix:"p")
      (Hlp_sim.Funcsim.output_word s2 ~prefix:"p")
  done;
  (* glitch capacitance drops (total may grow: buffer overhead) *)
  let gb, ga, _, _ = Retime.balancing_evaluation ~cycles:200 net in
  Alcotest.(check bool)
    (Printf.sprintf "glitches %.1f -> %.1f" gb ga)
    true (ga < gb)

let qcheck_pipeline_function_preserved =
  QCheck.Test.make ~name:"pipelining preserves function at any depth" ~count:10
    QCheck.(pair (int_range 0 10) (int_bound 1000))
    (fun (depth, seed) ->
      let n = 4 in
      let net = Hlp_logic.Generators.adder_circuit n in
      let depth = min depth (Hlp_logic.Netlist.logic_depth net) in
      let piped = Retime.pipeline_at_depth net ~depth in
      let sim_ref = Hlp_sim.Funcsim.create net in
      let sim_pipe = Hlp_sim.Funcsim.create piped in
      let rng = Hlp_util.Prng.create seed in
      let ok = ref true in
      let prev = ref None in
      for _ = 1 to 30 do
        let a = Hlp_util.Prng.int rng 16 and b = Hlp_util.Prng.int rng 16 in
        let vec =
          Array.init (2 * n) (fun i ->
              if i < n then Hlp_util.Bits.bit a i else Hlp_util.Bits.bit b (i - n))
        in
        Hlp_sim.Funcsim.step sim_ref vec;
        Hlp_sim.Funcsim.step sim_pipe vec;
        (match !prev with
        | Some p -> if p <> Hlp_sim.Funcsim.output_word sim_pipe ~prefix:"s" then ok := false
        | None -> ());
        prev := Some (Hlp_sim.Funcsim.output_word sim_ref ~prefix:"s")
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "precompute max msb" `Quick test_precompute_max_msb;
    Alcotest.test_case "precompute best subset" `Quick test_precompute_best_subset;
    Alcotest.test_case "precompute evaluate" `Quick test_precompute_evaluate_saves;
    Alcotest.test_case "precompute full subset" `Quick test_precompute_full_subset_is_total;
    Alcotest.test_case "precompute empty subset" `Quick test_precompute_empty_subset_trivial;
    Alcotest.test_case "gated clock reactive" `Quick test_gated_clock_reactive_saves;
    Alcotest.test_case "gated clock busy" `Quick test_gated_clock_busy_machine_no_win;
    Alcotest.test_case "gated clock monotone" `Quick test_gated_clock_saving_monotone_in_idleness;
    Alcotest.test_case "odc mux structure" `Quick test_odc_mux_structure;
    Alcotest.test_case "guard candidates" `Quick test_guard_candidates_on_demo;
    Alcotest.test_case "guard evaluate" `Quick test_guard_evaluate_saves_and_is_correct;
    Alcotest.test_case "guard both arms" `Quick test_guard_both_arms_found;
    Alcotest.test_case "pipeline preserves function" `Quick test_pipeline_preserves_function;
    Alcotest.test_case "glitch profile" `Quick test_glitch_profile_nonzero_on_multiplier;
    Alcotest.test_case "retiming reduces glitches" `Slow test_retiming_reduces_glitch_cap;
    Alcotest.test_case "registers vary with cut" `Quick test_register_count_varies_with_cut;
    Alcotest.test_case "path balancing" `Quick test_balance_paths_function_and_glitches;
    Alcotest.test_case "bdd synth equivalence" `Quick test_bdd_synth_equivalence;
    Alcotest.test_case "bdd synth sharing" `Quick test_bdd_synth_sharing;
    Alcotest.test_case "bdd synth adder" `Quick test_bdd_synth_adder_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_pipeline_function_preserved;
  ]
