open Hlp_logic
open Hlp_sim

let test_funcsim_adder () =
  let n = 8 in
  let net = Generators.adder_circuit n in
  let sim = Funcsim.create net in
  let rng = Hlp_util.Prng.create 21 in
  for _ = 1 to 200 do
    let a = Hlp_util.Prng.int rng 256 and b = Hlp_util.Prng.int rng 256 in
    let vec =
      Array.init (2 * n) (fun i ->
          if i < n then Hlp_util.Bits.bit a i else Hlp_util.Bits.bit b (i - n))
    in
    Funcsim.step sim vec;
    Alcotest.(check int) "sum" ((a + b) land 255) (Funcsim.output_word sim ~prefix:"s")
  done

let test_funcsim_energy_monotone () =
  (* a held input switches no capacitance; random inputs switch plenty *)
  let n = 8 in
  let net = Generators.multiplier_circuit n in
  let sim = Funcsim.create net in
  let rng = Hlp_util.Prng.create 5 in
  let a = Streams.uniform rng ~width:n ~n:100 in
  let b = Streams.uniform rng ~width:n ~n:100 in
  Funcsim.run sim (Streams.pack_fn ~widths:[ n; n ] [ a; b ]) 100;
  let random_cap = Funcsim.switched_capacitance sim in
  Alcotest.(check bool) "random switches" true (random_cap > 0.0);
  Funcsim.reset_counters sim;
  let hold = Array.make 100 a.(99) and holdb = Array.make 100 b.(99) in
  Funcsim.run sim (Streams.pack_fn ~widths:[ n; n ] [ hold; holdb ]) 100;
  Alcotest.(check (float 1e-9)) "held inputs switch nothing" 0.0
    (Funcsim.switched_capacitance sim)

let test_funcsim_counter_circuit () =
  (* 4-bit counter: bit i gets d_i = q_i xor carry_i, carry_{i+1} = q_i and carry_i *)
  let b = Netlist.Builder.create () in
  let qarr = Array.make 4 0 in
  let rec build i carry =
    if i = 4 then ()
    else begin
      let q =
        Netlist.Builder.dff_feedback b (fun q ->
            qarr.(i) <- q;
            let s = Netlist.Builder.xor_ b q carry in
            s)
      in
      ignore q;
      let c = Netlist.Builder.and_ b [ qarr.(i); carry ] in
      build (i + 1) c
    end
  in
  build 0 (Netlist.Builder.const_ b true);
  Array.iteri (fun i q -> Netlist.Builder.output b (Printf.sprintf "q%d" i) q) qarr;
  let net = Netlist.Builder.finish b in
  Netlist.validate net;
  let sim = Funcsim.create net in
  (* during cycle k the counter still shows k - 1 (the edge ending the
     cycle captures the increment) *)
  for k = 1 to 40 do
    Funcsim.step sim [||];
    Alcotest.(check int)
      (Printf.sprintf "count %d" k)
      ((k - 1) mod 16)
      (Funcsim.output_word sim ~prefix:"q")
  done

let test_funcsim_signal_probs () =
  (* constant-high input: signal prob of that input node should be ~1 *)
  let b = Netlist.Builder.create () in
  let i0 = Netlist.Builder.input b in
  let i1 = Netlist.Builder.input b in
  let o = Netlist.Builder.and_ b [ i0; i1 ] in
  Netlist.Builder.output b "o" o;
  let net = Netlist.Builder.finish b in
  let sim = Funcsim.create net in
  let rng = Hlp_util.Prng.create 3 in
  let nsteps = 2000 in
  for _ = 1 to nsteps do
    Funcsim.step sim [| true; Hlp_util.Prng.bernoulli rng 0.5 |]
  done;
  let highs = Funcsim.high_counts sim in
  Alcotest.(check int) "input0 always high" nsteps highs.(i0);
  let frac_o = float_of_int highs.(o) /. float_of_int nsteps in
  Alcotest.(check bool) "and output ~ 0.5" true (abs_float (frac_o -. 0.5) < 0.05)

let test_eventsim_matches_funcsim_functionally () =
  let n = 6 in
  let net = Generators.multiplier_circuit n in
  let fsim = Funcsim.create net and esim = Eventsim.create net in
  let rng = Hlp_util.Prng.create 77 in
  let a = Streams.uniform rng ~width:n ~n:50 in
  let b = Streams.uniform rng ~width:n ~n:50 in
  let src = Streams.pack_fn ~widths:[ n; n ] [ a; b ] in
  for i = 0 to 49 do
    Funcsim.step fsim (src i);
    Eventsim.step esim (src i);
    Array.iter
      (fun (_, w) ->
        Alcotest.(check bool) "same settled value" (Funcsim.value fsim w)
          (Eventsim.value esim w))
      net.Netlist.outputs
  done;
  (* functional toggle counts must agree *)
  let ft = Funcsim.toggle_counts fsim and et = Eventsim.functional_toggle_counts esim in
  Alcotest.(check bool) "functional toggles equal" true (ft = et)

let test_eventsim_glitches_nonnegative () =
  let n = 8 in
  let net = Generators.multiplier_circuit n in
  let esim = Eventsim.create net in
  let rng = Hlp_util.Prng.create 123 in
  let a = Streams.uniform rng ~width:n ~n:100 in
  let b = Streams.uniform rng ~width:n ~n:100 in
  Eventsim.run esim (Streams.pack_fn ~widths:[ n; n ] [ a; b ]) 100;
  Alcotest.(check bool) "glitch cap >= 0" true (Eventsim.glitch_capacitance esim >= 0.0);
  Alcotest.(check bool) "multiplier glitches" true (Eventsim.glitch_capacitance esim > 0.0);
  Array.iter
    (fun g -> Alcotest.(check bool) "per-node glitches >= 0" true (g >= 0))
    (Eventsim.glitch_counts esim)

let test_eventsim_xor_tree_glitch_free_on_equal_paths () =
  (* a balanced xor pair has equal path lengths: no glitches *)
  let b = Netlist.Builder.create () in
  let i0 = Netlist.Builder.input b and i1 = Netlist.Builder.input b in
  let o = Netlist.Builder.xor_ b i0 i1 in
  Netlist.Builder.output b "o" o;
  let net = Netlist.Builder.finish b in
  let esim = Eventsim.create net in
  let rng = Hlp_util.Prng.create 9 in
  for _ = 1 to 100 do
    Eventsim.step esim [| Hlp_util.Prng.bool rng; Hlp_util.Prng.bool rng |]
  done;
  Alcotest.(check (float 1e-9)) "no glitch energy" 0.0 (Eventsim.glitch_capacitance esim)

let test_streams_uniform_stats () =
  let rng = Hlp_util.Prng.create 31 in
  let tr = Streams.uniform rng ~width:16 ~n:5000 in
  let act = Activity.of_trace ~width:16 tr in
  Alcotest.(check bool) "signal prob ~ 0.5" true
    (abs_float (Activity.mean_signal_prob act -. 0.5) < 0.03);
  Alcotest.(check bool) "activity ~ 0.5" true
    (abs_float (Activity.mean_activity act -. 0.5) < 0.03);
  Alcotest.(check bool) "entropy ~ 1" true (Activity.mean_bit_entropy act > 0.98)

let test_streams_biased_stats () =
  let rng = Hlp_util.Prng.create 37 in
  let tr = Streams.biased_bits rng ~width:12 ~p:0.2 ~n:8000 in
  let act = Activity.of_trace ~width:12 tr in
  Alcotest.(check bool) "signal prob ~ 0.2" true
    (abs_float (Activity.mean_signal_prob act -. 0.2) < 0.03);
  (* independent biased bits: activity = 2 p (1-p) = 0.32 *)
  Alcotest.(check bool) "activity ~ 0.32" true
    (abs_float (Activity.mean_activity act -. 0.32) < 0.03)

let test_streams_correlated_stats () =
  let rng = Hlp_util.Prng.create 41 in
  let tr = Streams.correlated_bits rng ~width:12 ~p:0.5 ~rho:0.8 ~n:8000 in
  let act = Activity.of_trace ~width:12 tr in
  Alcotest.(check bool) "signal prob ~ 0.5" true
    (abs_float (Activity.mean_signal_prob act -. 0.5) < 0.05);
  (* activity = 2 p (1-p) (1-rho) = 0.1 *)
  Alcotest.(check bool) "activity ~ 0.1" true
    (abs_float (Activity.mean_activity act -. 0.1) < 0.03)

let test_streams_gaussian_walk_dual_bit () =
  let rng = Hlp_util.Prng.create 43 in
  let width = 16 in
  let tr = Streams.gaussian_walk rng ~width ~sigma:16.0 ~n:20000 in
  let act = Activity.of_trace ~width tr in
  (* LSBs random, MSBs quiet *)
  Alcotest.(check bool) "lsb busy" true (act.Activity.activity.(0) > 0.4);
  Alcotest.(check bool) "msb quiet" true (act.Activity.activity.(width - 1) < 0.1);
  let bp = Activity.breakpoint act in
  Alcotest.(check bool) "breakpoint strictly inside" true (bp > 0 && bp < width)

let test_streams_counter () =
  let tr = Streams.counter ~start:250 ~width:8 ~n:10 in
  Alcotest.(check int) "wraps" ((250 + 9) land 255) tr.(9);
  let tr2 = Streams.strided ~start:0 ~stride:4 ~width:8 ~n:5 in
  Alcotest.(check int) "stride" 16 tr2.(4)

let test_streams_hold () =
  let rng = Hlp_util.Prng.create 47 in
  let base = Streams.uniform rng ~width:8 ~n:4000 in
  let held = Streams.hold rng ~change_prob:0.1 base in
  let changes = ref 0 in
  for i = 1 to 3999 do
    if held.(i) <> held.(i - 1) then incr changes
  done;
  let frac = float_of_int !changes /. 3999.0 in
  Alcotest.(check bool) "change rate ~ 0.1" true (frac < 0.15)

let test_activity_word_entropy () =
  (* constant stream: zero entropy; uniform over 4 values: 2 bits *)
  Alcotest.(check (float 1e-9)) "constant" 0.0
    (Activity.word_entropy ~width:8 (Array.make 100 42));
  let tr = Array.init 400 (fun i -> i mod 4) in
  Alcotest.(check (float 1e-9)) "uniform 4 values" 2.0 (Activity.word_entropy ~width:8 tr)

let test_activity_bit_entropy () =
  Alcotest.(check (float 1e-9)) "h(0.5)=1" 1.0 (Activity.bit_entropy ~p:0.5);
  Alcotest.(check (float 1e-9)) "h(0)=0" 0.0 (Activity.bit_entropy ~p:0.0);
  Alcotest.(check bool) "h(0.1) < h(0.3)" true
    (Activity.bit_entropy ~p:0.1 < Activity.bit_entropy ~p:0.3)

let test_sign_transitions () =
  let width = 4 in
  (* alternating +1 / -1: only +- and -+ transitions *)
  let tr = Array.init 100 (fun i -> if i mod 2 = 0 then 1 else Hlp_util.Bits.of_signed ~width (-1)) in
  let probs = Activity.sign_transition_probs ~width tr in
  Alcotest.(check (float 1e-9)) "pp" 0.0 probs.(0);
  Alcotest.(check bool) "pm ~ 0.5" true (abs_float (probs.(1) -. 0.5) < 0.02);
  Alcotest.(check bool) "mp ~ 0.5" true (abs_float (probs.(2) -. 0.5) < 0.02);
  Alcotest.(check (float 1e-9)) "mm" 0.0 probs.(3)

let qcheck_funcsim_vs_reference =
  QCheck.Test.make ~name:"funcsim agrees with direct evaluation on max circuit"
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let n = 8 in
      let net = Generators.max_circuit n in
      let sim = Funcsim.create net in
      let vec =
        Array.init (2 * n) (fun i ->
            if i < n then Hlp_util.Bits.bit a i else Hlp_util.Bits.bit b (i - n))
      in
      Funcsim.step sim vec;
      Funcsim.output_word sim ~prefix:"m" = max a b)

let suite =
  [
    Alcotest.test_case "funcsim adder" `Quick test_funcsim_adder;
    Alcotest.test_case "funcsim energy monotone" `Quick test_funcsim_energy_monotone;
    Alcotest.test_case "funcsim counter" `Quick test_funcsim_counter_circuit;
    Alcotest.test_case "funcsim signal probs" `Quick test_funcsim_signal_probs;
    Alcotest.test_case "eventsim matches funcsim" `Quick test_eventsim_matches_funcsim_functionally;
    Alcotest.test_case "eventsim glitches" `Quick test_eventsim_glitches_nonnegative;
    Alcotest.test_case "eventsim equal paths glitch-free" `Quick
      test_eventsim_xor_tree_glitch_free_on_equal_paths;
    Alcotest.test_case "streams uniform stats" `Quick test_streams_uniform_stats;
    Alcotest.test_case "streams biased stats" `Quick test_streams_biased_stats;
    Alcotest.test_case "streams correlated stats" `Quick test_streams_correlated_stats;
    Alcotest.test_case "streams gaussian walk dual-bit" `Quick test_streams_gaussian_walk_dual_bit;
    Alcotest.test_case "streams counter/strided" `Quick test_streams_counter;
    Alcotest.test_case "streams hold" `Quick test_streams_hold;
    Alcotest.test_case "activity word entropy" `Quick test_activity_word_entropy;
    Alcotest.test_case "activity bit entropy" `Quick test_activity_bit_entropy;
    Alcotest.test_case "activity sign transitions" `Quick test_sign_transitions;
    QCheck_alcotest.to_alcotest qcheck_funcsim_vs_reference;
  ]
