open Hlp_logic

(* Evaluate a purely combinational netlist on one input assignment by a
   direct reference interpreter (independent of the simulator). *)
let eval_circuit net inputs =
  let values = Array.make (Netlist.num_nodes net) false in
  Array.iteri (fun k w -> values.(w) <- inputs.(k)) net.Netlist.inputs;
  Array.iteri
    (fun i (node : Netlist.node) ->
      match node.Netlist.kind with
      | Gate.Input | Gate.Dff -> ()
      | kind ->
          values.(i) <-
            Gate.eval kind (Array.map (fun w -> values.(w)) node.Netlist.fanin))
    net.Netlist.nodes;
  values

let out_word net values prefix =
  let v = ref 0 in
  Array.iter
    (fun (name, w) ->
      let pl = String.length prefix in
      if String.length name > pl && String.sub name 0 pl = prefix then
        match int_of_string_opt (String.sub name pl (String.length name - pl)) with
        | Some i -> if values.(w) then v := !v lor (1 lsl i)
        | None -> ())
    net.Netlist.outputs;
  !v

let out_bit net values name =
  let _, w = Array.to_list net.Netlist.outputs |> List.find (fun (n, _) -> n = name) in
  values.(w)

let input_vec ~n a b =
  Array.init (2 * n) (fun i ->
      if i < n then Hlp_util.Bits.bit a i else Hlp_util.Bits.bit b (i - n))

let test_gate_eval () =
  Alcotest.(check bool) "and" true (Gate.eval (Gate.And 3) [| true; true; true |]);
  Alcotest.(check bool) "and f" false (Gate.eval (Gate.And 3) [| true; false; true |]);
  Alcotest.(check bool) "nand" true (Gate.eval (Gate.Nand 2) [| true; false |]);
  Alcotest.(check bool) "nor" true (Gate.eval (Gate.Nor 2) [| false; false |]);
  Alcotest.(check bool) "xor" true (Gate.eval Gate.Xor [| true; false |]);
  Alcotest.(check bool) "xnor" true (Gate.eval Gate.Xnor [| true; true |]);
  Alcotest.(check bool) "mux sel=0" true (Gate.eval Gate.Mux [| false; true; false |]);
  Alcotest.(check bool) "mux sel=1" false (Gate.eval Gate.Mux [| true; true; false |])

let test_gate_arity_consistency () =
  List.iter
    (fun kind ->
      let n = Gate.arity kind in
      Alcotest.(check bool)
        (Gate.name kind ^ " evaluates")
        true
        (let _ = Gate.eval kind (Array.make n false) in
         true))
    Gate.all_combinational

let test_adder_exhaustive () =
  let n = 4 in
  let net = Generators.adder_circuit n in
  Netlist.validate net;
  for a = 0 to 15 do
    for b = 0 to 15 do
      let values = eval_circuit net (input_vec ~n a b) in
      let sum = out_word net values "s" in
      let cout = out_bit net values "cout" in
      let expect = a + b in
      Alcotest.(check int) "sum" (expect land 15) sum;
      Alcotest.(check bool) "carry" (expect > 15) cout
    done
  done

let test_multiplier_exhaustive () =
  let n = 4 in
  let net = Generators.multiplier_circuit n in
  Netlist.validate net;
  for a = 0 to 15 do
    for b = 0 to 15 do
      let values = eval_circuit net (input_vec ~n a b) in
      Alcotest.(check int) "product" (a * b) (out_word net values "p")
    done
  done

let test_comparator_exhaustive () =
  let n = 4 in
  let net = Generators.comparator_circuit n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let values = eval_circuit net (input_vec ~n a b) in
      Alcotest.(check bool) "lt" (a < b) (out_bit net values "lt");
      Alcotest.(check bool) "eq" (a = b) (out_bit net values "eq")
    done
  done

let test_max_circuit () =
  let n = 4 in
  let net = Generators.max_circuit n in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let values = eval_circuit net (input_vec ~n a b) in
      Alcotest.(check int) "max" (max a b) (out_word net values "m")
    done
  done

let test_alu_exhaustive () =
  let n = 4 in
  let net = Generators.alu_circuit n in
  (* inputs: op0 op1 a0..a3 b0..b3 *)
  for op = 0 to 3 do
    for a = 0 to 15 do
      for b = 0 to 15 do
        let vec =
          Array.init (2 + (2 * n)) (fun i ->
              if i < 2 then Hlp_util.Bits.bit op i
              else if i < 2 + n then Hlp_util.Bits.bit a (i - 2)
              else Hlp_util.Bits.bit b (i - 2 - n))
        in
        let values = eval_circuit net vec in
        let expect =
          match op with
          | 0 -> a land b
          | 1 -> a lor b
          | 2 -> a lxor b
          | _ -> (a + b) land 15
        in
        Alcotest.(check int) "alu" expect (out_word net values "r")
      done
    done
  done

let test_parity () =
  let net = Generators.parity_circuit 7 in
  for v = 0 to 127 do
    let vec = Array.init 7 (fun i -> Hlp_util.Bits.bit v i) in
    let values = eval_circuit net vec in
    Alcotest.(check bool) "parity" (Hlp_util.Bits.popcount v mod 2 = 1)
      (out_bit net values "parity")
  done

let test_carry_select_adder_exhaustive () =
  let n = 6 in
  List.iter
    (fun block ->
      let b = Netlist.Builder.create () in
      let x = Netlist.Builder.inputs ~prefix:"a" b n in
      let y = Netlist.Builder.inputs ~prefix:"b" b n in
      let sum, cout = Generators.carry_select_adder b ~block x y in
      Array.iteri (fun i w -> Netlist.Builder.output b (Printf.sprintf "s%d" i) w) sum;
      Netlist.Builder.output b "cout" cout;
      let net = Netlist.Builder.finish b in
      Netlist.validate net;
      for a = 0 to 63 do
        for c = 0 to 63 do
          let values = eval_circuit net (input_vec ~n a c) in
          Alcotest.(check int)
            (Printf.sprintf "csa b=%d %d+%d" block a c)
            ((a + c) land 63)
            (out_word net values "s");
          Alcotest.(check bool) "cout" (a + c > 63) (out_bit net values "cout")
        done
      done)
    [ 2; 3; 4 ]

let test_carry_select_faster_but_bigger () =
  let n = 16 in
  let build f =
    let b = Netlist.Builder.create () in
    let x = Netlist.Builder.inputs ~prefix:"a" b n in
    let y = Netlist.Builder.inputs ~prefix:"b" b n in
    let sum, _ = f b x y in
    Array.iteri (fun i w -> Netlist.Builder.output b (Printf.sprintf "s%d" i) w) sum;
    Netlist.Builder.finish b
  in
  let ripple = build (fun b x y -> Generators.ripple_adder b x y) in
  let csel = build (fun b x y -> Generators.carry_select_adder b ~block:4 x y) in
  Alcotest.(check bool) "carry-select is faster" true
    (Netlist.critical_path csel < Netlist.critical_path ripple);
  Alcotest.(check bool) "carry-select is bigger" true
    (Netlist.total_capacitance csel > Netlist.total_capacitance ripple)

let test_wallace_multiplier_exhaustive () =
  let n = 5 in
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.inputs ~prefix:"a" b n in
  let y = Netlist.Builder.inputs ~prefix:"b" b n in
  let p = Generators.wallace_multiplier b x y in
  Array.iteri (fun i w -> Netlist.Builder.output b (Printf.sprintf "p%d" i) w) p;
  let net = Netlist.Builder.finish b in
  Netlist.validate net;
  for a = 0 to 31 do
    for c = 0 to 31 do
      let values = eval_circuit net (input_vec ~n a c) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a c) (a * c) (out_word net values "p")
    done
  done

let test_wallace_shallower_than_array () =
  let n = 8 in
  let build f =
    let b = Netlist.Builder.create () in
    let x = Netlist.Builder.inputs ~prefix:"a" b n in
    let y = Netlist.Builder.inputs ~prefix:"b" b n in
    let p = f b x y in
    Array.iteri (fun i w -> Netlist.Builder.output b (Printf.sprintf "p%d" i) w) p;
    Netlist.Builder.finish b
  in
  let array_m = build Generators.array_multiplier in
  let wallace = build Generators.wallace_multiplier in
  Alcotest.(check bool) "wallace shallower" true
    (Netlist.critical_path wallace < Netlist.critical_path array_m)

let test_csd_digits () =
  let value_of digits =
    List.fold_left (fun (acc, k) d -> (acc + (d lsl k), k + 1)) (0, 0) digits |> fst
  in
  for c = 0 to 1000 do
    let digits = Generators.csd_digits c in
    Alcotest.(check int) "csd value" c (value_of digits);
    (* canonical: no two adjacent nonzero digits *)
    let rec check = function
      | a :: b :: rest ->
          Alcotest.(check bool) "no adjacent nonzeros" true (a = 0 || b = 0);
          check (b :: rest)
      | _ -> ()
    in
    check digits
  done

let test_constant_multiplier () =
  let n = 6 and width = 12 in
  List.iter
    (fun c ->
      let b = Netlist.Builder.create () in
      let x = Netlist.Builder.inputs ~prefix:"a" b n in
      let p = Generators.constant_multiplier b x c ~width in
      Array.iteri (fun i w -> Netlist.Builder.output b (Printf.sprintf "p%d" i) w) p;
      let net = Netlist.Builder.finish b in
      Netlist.validate net;
      for a = 0 to 63 do
        let vec = Array.init n (fun i -> Hlp_util.Bits.bit a i) in
        let values = eval_circuit net vec in
        Alcotest.(check int)
          (Printf.sprintf "%d * %d" a c)
          ((a * c) land Hlp_util.Bits.mask width)
          (out_word net values "p")
      done)
    [ 0; 1; 3; 7; 11; 23; 45; 60 ]

let test_subtractor () =
  let n = 5 in
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.inputs ~prefix:"a" b n in
  let y = Netlist.Builder.inputs ~prefix:"b" b n in
  let d, noborrow = Generators.subtractor b x y in
  Array.iteri (fun i w -> Netlist.Builder.output b (Printf.sprintf "d%d" i) w) d;
  Netlist.Builder.output b "nb" noborrow;
  let net = Netlist.Builder.finish b in
  for a = 0 to 31 do
    for c = 0 to 31 do
      let values = eval_circuit net (input_vec ~n a c) in
      Alcotest.(check int) "diff" ((a - c) land 31) (out_word net values "d");
      Alcotest.(check bool) "no-borrow = a>=b" (a >= c) (out_bit net values "nb")
    done
  done

let test_structural_stats () =
  let net = Generators.adder_circuit 8 in
  Alcotest.(check bool) "has gates" true (Netlist.num_gates net > 8);
  Alcotest.(check bool) "positive cap" true (Netlist.total_capacitance net > 0.0);
  Alcotest.(check bool) "positive GE" true (Netlist.gate_equivalents net > 0.0);
  Alcotest.(check bool) "depth grows with width" true
    (Netlist.logic_depth (Generators.adder_circuit 16) > Netlist.logic_depth net);
  Alcotest.(check bool) "critical path positive" true (Netlist.critical_path net > 0.0)

let test_multiplier_bigger_than_adder () =
  (* sanity for complexity models: multiplier >> adder in every size metric *)
  let a = Generators.adder_circuit 8 and m = Generators.multiplier_circuit 8 in
  Alcotest.(check bool) "gates" true (Netlist.num_gates m > 4 * Netlist.num_gates a);
  Alcotest.(check bool) "cap" true
    (Netlist.total_capacitance m > 4.0 *. Netlist.total_capacitance a)

let test_dff_feedback () =
  (* toggle flip-flop: q' = not q *)
  let b = Netlist.Builder.create () in
  let q = Netlist.Builder.dff_feedback b (fun q -> Netlist.Builder.not_ b q) in
  Netlist.Builder.output b "q" q;
  let net = Netlist.Builder.finish b in
  Netlist.validate net;
  Alcotest.(check int) "one dff" 1 (Netlist.num_dffs net)

let test_unconnected_dff_fails () =
  let b = Netlist.Builder.create () in
  let i = Netlist.Builder.input b in
  ignore i;
  Alcotest.(check bool) "finish ok when connected" true
    (let _ = Netlist.Builder.finish b in
     true)

let test_random_logic_valid () =
  let rng = Hlp_util.Prng.create 99 in
  for _ = 1 to 10 do
    let net = Generators.random_logic rng ~inputs:8 ~outputs:4 ~gates:100 in
    Netlist.validate net;
    Alcotest.(check int) "gate count" 100 (Netlist.num_gates net)
  done

let test_random_function_circuit () =
  let rng = Hlp_util.Prng.create 4 in
  let net = Generators.random_function_circuit rng ~inputs:5 ~minterm_prob:0.3 in
  Netlist.validate net;
  (* output must equal characteristic function of the chosen minterm set:
     at least check it is a well-formed single-output circuit *)
  Alcotest.(check int) "one output" 1 (Array.length net.Netlist.outputs)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_verilog_export () =
  let net = Generators.adder_circuit 4 in
  let v = Export.to_verilog ~module_name:"adder4" net in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains v needle))
    [ "module adder4"; "endmodule"; "xor ("; "and ("; "assign cout" ];
  (* sequential circuits get clocked always blocks *)
  let b = Netlist.Builder.create () in
  let q = Netlist.Builder.dff_feedback ~init:true b (fun q -> Netlist.Builder.not_ b q) in
  Netlist.Builder.output b "q" q;
  let seq = Netlist.Builder.finish b in
  let vs = Export.to_verilog seq in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("seq contains " ^ needle) true (contains vs needle))
    [ "input clk, rst"; "always @(posedge clk"; "<= 1'b1" ]

let test_dot_export () =
  let net = Generators.adder_circuit 2 in
  let d = Export.to_dot net in
  Alcotest.(check bool) "digraph" true (String.length d > 50);
  Alcotest.(check bool) "too-large rejected" true
    (try ignore (Export.to_dot ~max_nodes:10 (Generators.multiplier_circuit 8)); false
     with Invalid_argument _ -> true)

let test_builder_error_paths () =
  (* an unconnected feedback dff must be caught at finish *)
  let module B = Netlist.Builder in
  Alcotest.(check bool) "rename non-monotone rejected" true
    (let m = Hlp_bdd.Bdd.manager () in
     let f = Hlp_bdd.Bdd.and_ m (Hlp_bdd.Bdd.var m 0) (Hlp_bdd.Bdd.var m 1) in
     try ignore (Hlp_bdd.Bdd.rename m (fun v -> 1 - v) f); false
     with Invalid_argument _ -> true);
  (* invalid netlist structures are rejected by validate *)
  let b = B.create () in
  let i = B.input b in
  B.output b "o" (B.not_ b i);
  let net = B.finish b in
  Netlist.validate net;
  Alcotest.(check bool) "ok netlist validates" true true

let qcheck_adder_correct =
  QCheck.Test.make ~name:"wide ripple adder adds"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      let n = 16 in
      let net = Generators.adder_circuit n in
      let values = eval_circuit net (input_vec ~n a b) in
      out_word net values "s" = (a + b) land 0xFFFF)

let qcheck_mult_commutes =
  QCheck.Test.make ~name:"array multiplier commutes"
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let n = 8 in
      let net = Generators.multiplier_circuit n in
      let va = eval_circuit net (input_vec ~n a b) in
      let vb = eval_circuit net (input_vec ~n b a) in
      out_word net va "p" = out_word net vb "p" && out_word net va "p" = a * b)

let suite =
  [
    Alcotest.test_case "gate eval" `Quick test_gate_eval;
    Alcotest.test_case "gate arity consistency" `Quick test_gate_arity_consistency;
    Alcotest.test_case "adder exhaustive" `Quick test_adder_exhaustive;
    Alcotest.test_case "multiplier exhaustive" `Quick test_multiplier_exhaustive;
    Alcotest.test_case "comparator exhaustive" `Quick test_comparator_exhaustive;
    Alcotest.test_case "max circuit" `Quick test_max_circuit;
    Alcotest.test_case "alu exhaustive" `Slow test_alu_exhaustive;
    Alcotest.test_case "parity" `Quick test_parity;
    Alcotest.test_case "carry-select adder" `Quick test_carry_select_adder_exhaustive;
    Alcotest.test_case "carry-select tradeoff" `Quick test_carry_select_faster_but_bigger;
    Alcotest.test_case "wallace multiplier" `Quick test_wallace_multiplier_exhaustive;
    Alcotest.test_case "wallace shallower" `Quick test_wallace_shallower_than_array;
    Alcotest.test_case "csd digits" `Quick test_csd_digits;
    Alcotest.test_case "constant multiplier" `Quick test_constant_multiplier;
    Alcotest.test_case "subtractor" `Quick test_subtractor;
    Alcotest.test_case "structural stats" `Quick test_structural_stats;
    Alcotest.test_case "multiplier bigger than adder" `Quick test_multiplier_bigger_than_adder;
    Alcotest.test_case "dff feedback" `Quick test_dff_feedback;
    Alcotest.test_case "builder finish" `Quick test_unconnected_dff_fails;
    Alcotest.test_case "random logic valid" `Quick test_random_logic_valid;
    Alcotest.test_case "random function circuit" `Quick test_random_function_circuit;
    Alcotest.test_case "verilog export" `Quick test_verilog_export;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "builder error paths" `Quick test_builder_error_paths;
    QCheck_alcotest.to_alcotest qcheck_adder_correct;
    QCheck_alcotest.to_alcotest qcheck_mult_commutes;
  ]
