open Hlp_rtl

let poly2 x a b = (x * x) + (b * x) + a
let poly3 x a b c = (x * x * x) + (c * x * x) + (b * x) + a

let test_poly_figures_op_counts () =
  let count_ops g =
    (Transform.mul_count g, Transform.add_sub_count g, Cdfg.critical_path_ops g)
  in
  Alcotest.(check (triple int int int)) "fig4 left" (2, 2, 3) (count_ops (Cdfg.poly2_direct ()));
  Alcotest.(check (triple int int int)) "fig4 right" (1, 2, 3) (count_ops (Cdfg.poly2_horner ()));
  Alcotest.(check (triple int int int)) "fig5 left" (4, 3, 4) (count_ops (Cdfg.poly3_direct ()));
  Alcotest.(check (triple int int int)) "fig5 right" (2, 3, 5) (count_ops (Cdfg.poly3_horner ()))

let test_poly_semantics () =
  let check_poly g f =
    for x = -5 to 5 do
      let env name =
        match name with
        | "x" -> x
        | "a" -> 7
        | "b" -> -3
        | "c" -> 4
        | _ -> 0
      in
      let v = Cdfg.evaluate g ~env in
      let out = List.hd g.Cdfg.outputs in
      Alcotest.(check int) "value" (f x 7 (-3) 4) v.(out)
    done
  in
  check_poly (Cdfg.poly2_direct ()) (fun x a b _ -> poly2 x a b);
  check_poly (Cdfg.poly2_horner ()) (fun x a b _ -> poly2 x a b);
  check_poly (Cdfg.poly3_direct ()) poly3;
  check_poly (Cdfg.poly3_horner ()) poly3

let test_poly_pairs_equivalent () =
  Alcotest.(check bool) "fig4 pair" true
    (Transform.equivalent (Cdfg.poly2_direct ()) (Cdfg.poly2_horner ()));
  Alcotest.(check bool) "fig5 pair" true
    (Transform.equivalent (Cdfg.poly3_direct ()) (Cdfg.poly3_horner ()))

let test_asap_alap () =
  let g = Cdfg.diffeq () in
  let a = Schedule.asap g in
  Schedule.verify g a;
  let l = Schedule.alap g ~latency:a.Schedule.latency in
  Schedule.verify g l;
  (* alap never schedules earlier than asap *)
  Array.iteri
    (fun i s -> Alcotest.(check bool) "alap >= asap" true (l.Schedule.steps.(i) >= s))
    a.Schedule.steps;
  (* relaxing latency by 3 shifts outputs later *)
  let l2 = Schedule.alap g ~latency:(a.Schedule.latency + 3) in
  Schedule.verify g l2;
  Alcotest.(check bool) "alap uses slack" true
    (List.exists
       (fun o -> l2.Schedule.steps.(o) > l.Schedule.steps.(o))
       g.Cdfg.outputs)

let test_alap_below_minimum_rejected () =
  let g = Cdfg.diffeq () in
  let a = Schedule.asap g in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Schedule.alap g ~latency:(a.Schedule.latency - 1));
       false
     with Invalid_argument _ -> true)

let test_list_schedule_resource_constrained () =
  let g = Cdfg.diffeq () in
  (* one multiplier: schedule must serialize the 5 multiplications *)
  let s = Schedule.list_schedule g ~resources:[ (Module_energy.Multiplier, 1) ] in
  Schedule.verify g s;
  let usage = Schedule.resource_usage g s in
  let mults = Option.value ~default:0 (List.assoc_opt Module_energy.Multiplier usage) in
  Alcotest.(check int) "single multiplier" 1 mults;
  (* unconstrained schedule is shorter *)
  let a = Schedule.asap g in
  Alcotest.(check bool) "serialization costs latency" true
    (s.Schedule.latency > a.Schedule.latency)

let test_list_schedule_matches_asap_unconstrained () =
  let g = Cdfg.poly3_direct () in
  let s = Schedule.list_schedule g ~resources:[] in
  Schedule.verify g s;
  Alcotest.(check int) "same latency as asap" (Schedule.asap g).Schedule.latency
    s.Schedule.latency

let test_resource_usage_fig4 () =
  (* the factored form of Fig. 4 needs only one multiplier *)
  let direct = Schedule.asap (Cdfg.poly2_direct ()) in
  let horner = Schedule.asap (Cdfg.poly2_horner ()) in
  let u_direct = Schedule.resource_usage (Cdfg.poly2_direct ()) direct in
  let u_horner = Schedule.resource_usage (Cdfg.poly2_horner ()) horner in
  let mults u = Option.value ~default:0 (List.assoc_opt Module_energy.Multiplier u) in
  Alcotest.(check int) "direct mults" 2 (mults u_direct);
  Alcotest.(check int) "horner mults" 1 (mults u_horner)

let test_pm_scheduling_branchy () =
  let g = Cdfg.branchy () in
  let a = Schedule.asap g in
  let pm = Schedule.power_managed g ~latency:(a.Schedule.latency + 2) in
  Alcotest.(check bool) "found manageable muxes" true (pm.Schedule.manageable <> []);
  (* pm energy with an even selector must be lower than unmanaged *)
  let base = Schedule.energy g in
  let managed = Schedule.pm_energy g pm ~sel_prob:(fun _ -> 0.5) in
  Alcotest.(check bool) "saves energy" true (managed < base);
  (* savings in the 5-33% window the paper reports for such graphs *)
  let saving = (base -. managed) /. base in
  Alcotest.(check bool) "saving plausible" true (saving > 0.03 && saving < 0.6)

let test_pm_energy_biased_selector () =
  (* if the selector always avoids the expensive arm, savings grow *)
  let g = Cdfg.branchy () in
  let a = Schedule.asap g in
  let pm = Schedule.power_managed g ~latency:(a.Schedule.latency + 2) in
  let even = Schedule.pm_energy g pm ~sel_prob:(fun _ -> 0.5) in
  let avoid_expensive = Schedule.pm_energy g pm ~sel_prob:(fun _ -> 0.0) in
  Alcotest.(check bool) "avoiding the mul arm saves more" true (avoid_expensive < even)

let test_module_energy_monotone () =
  let open Module_energy in
  Alcotest.(check bool) "mult >> adder" true
    (energy Multiplier ~width:16 ~vdd:5.0 ~activity:0.5
    > 4.0 *. energy Adder ~width:16 ~vdd:5.0 ~activity:0.5);
  Alcotest.(check bool) "energy quadratic in vdd" true
    (abs_float
       (energy Adder ~width:16 ~vdd:2.5 ~activity:0.5
        /. energy Adder ~width:16 ~vdd:5.0 ~activity:0.5
       -. 0.25)
    < 1e-9);
  Alcotest.(check bool) "delay grows at low vdd" true
    (delay Adder ~width:16 ~vdd:2.4 > delay Adder ~width:16 ~vdd:5.0);
  Alcotest.(check bool) "activity scales" true
    (energy Adder ~width:8 ~vdd:5.0 ~activity:0.25
    < energy Adder ~width:8 ~vdd:5.0 ~activity:0.5)

let test_module_energy_calibration () =
  (* the Adder coefficient should be within 2x of the simulated switched
     capacitance of a real ripple adder under white noise *)
  let n = 8 in
  let net = Hlp_logic.Generators.adder_circuit n in
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create 3 in
  let a = Hlp_sim.Streams.uniform rng ~width:n ~n:2000 in
  let b = Hlp_sim.Streams.uniform rng ~width:n ~n:2000 in
  Hlp_sim.Funcsim.run sim (Hlp_sim.Streams.pack_fn ~widths:[ n; n ] [ a; b ]) 2000;
  let measured = Hlp_sim.Funcsim.switched_capacitance sim /. 2000.0 in
  let model = Module_energy.switched_capacitance Module_energy.Adder ~width:n ~activity:0.5 in
  let ratio = model /. measured in
  Alcotest.(check bool)
    (Printf.sprintf "calibration ratio %.2f in [0.5, 2]" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_voltage_single_baseline () =
  let g = Cdfg.diffeq () in
  let base = Voltage.single_voltage g in
  Alcotest.(check int) "no shifters" 0 base.Voltage.num_shifters;
  Alcotest.(check bool) "positive delay" true (base.Voltage.total_delay > 0.0);
  Voltage.verify g base

let test_voltage_scheduling_saves_energy_with_slack () =
  let g = Cdfg.diffeq () in
  let base = Voltage.single_voltage g in
  (* generous deadline: everything can drop to 2.4 V *)
  match Voltage.schedule g ~deadline:(base.Voltage.total_delay *. 4.0) with
  | None -> Alcotest.fail "should be feasible"
  | Some relaxed ->
      Voltage.verify g relaxed;
      Alcotest.(check bool) "saves energy" true
        (relaxed.Voltage.total_energy < base.Voltage.total_energy);
      Alcotest.(check bool) "substantial saving" true
        (relaxed.Voltage.total_energy < 0.5 *. base.Voltage.total_energy)

let test_voltage_tight_deadline_no_scaling () =
  let g = Cdfg.diffeq () in
  let base = Voltage.single_voltage g in
  match Voltage.schedule g ~deadline:base.Voltage.total_delay with
  | None -> Alcotest.fail "reference voltage meets its own delay"
  | Some asg ->
      Voltage.verify g asg;
      Alcotest.(check bool) "meets deadline" true
        (asg.Voltage.total_delay <= base.Voltage.total_delay +. 1e-9)

let test_voltage_infeasible () =
  let g = Cdfg.diffeq () in
  Alcotest.(check bool) "too tight" true (Voltage.schedule g ~deadline:1.0 = None)

let test_voltage_curve_pareto () =
  let g = Cdfg.poly2_horner () in
  let c = Voltage.curve g (List.hd g.Cdfg.outputs) in
  Alcotest.(check bool) "nonempty" true (c <> []);
  let rec monotone = function
    | a :: b :: rest ->
        Alcotest.(check bool) "delay ascending" true (a.Voltage.delay <= b.Voltage.delay);
        Alcotest.(check bool) "energy descending" true (a.Voltage.energy >= b.Voltage.energy);
        monotone (b :: rest)
    | _ -> ()
  in
  monotone c

let test_transform_recognize_const () =
  let g = Cdfg.fir ~coeffs:[ 3; 5; 7 ] in
  Alcotest.(check int) "general muls before" 3
    (Cdfg.count g (function Cdfg.Mul -> true | _ -> false));
  let g' = Transform.recognize_const_mults g in
  Alcotest.(check int) "no general muls after" 0
    (Cdfg.count g' (function Cdfg.Mul -> true | _ -> false));
  Alcotest.(check int) "const muls appear" 3
    (Cdfg.count g' (function Cdfg.MulConst _ -> true | _ -> false));
  Alcotest.(check bool) "equivalent" true (Transform.equivalent g g')

let test_transform_strength_reduce () =
  let g = Transform.recognize_const_mults (Cdfg.fir ~coeffs:[ 3; 5; 12; 1; 0 ]) in
  let g' = Transform.strength_reduce g in
  Alcotest.(check int) "no multiplies at all" 0 (Transform.mul_count g');
  Alcotest.(check bool) "adds appeared" true
    (Transform.add_sub_count g' > Transform.add_sub_count g);
  Alcotest.(check bool) "equivalent" true (Transform.equivalent g g')

let test_transform_dead_elimination () =
  let b = Cdfg.Build.create () in
  let x = Cdfg.Build.input b "x" in
  let live = Cdfg.Build.add b x x in
  let _dead = Cdfg.Build.mul b x x in
  let g = Cdfg.Build.finish b ~outputs:[ live ] in
  let g' = Transform.eliminate_dead g in
  Alcotest.(check bool) "smaller" true (Array.length g'.Cdfg.nodes < Array.length g.Cdfg.nodes);
  Alcotest.(check bool) "equivalent" true (Transform.equivalent g g')

let test_allocate_profile_and_bindings () =
  let g = Cdfg.diffeq () in
  let sched = Schedule.list_schedule g ~resources:[ (Module_energy.Multiplier, 2) ] in
  let prof = Allocate.profile ~samples:50 g in
  let area = Allocate.bind_greedy_area g sched in
  let lp = Allocate.bind_low_power g sched prof in
  (* every computational op is bound *)
  Array.iteri
    (fun i (node : Cdfg.node) ->
      match Module_energy.resource_of_op node.Cdfg.op with
      | Some _ ->
          Alcotest.(check bool) "area bound" true (area.Allocate.unit_of.(i) >= 0);
          Alcotest.(check bool) "lp bound" true (lp.Allocate.unit_of.(i) >= 0)
      | None -> ())
    g.Cdfg.nodes;
  (* bindings respect the schedule: ops sharing a unit never overlap *)
  let check_binding (binding : Allocate.binding) =
    Array.iteri
      (fun i ui ->
        if ui >= 0 then
          Array.iteri
            (fun j uj ->
              if j > i && uj = ui then
                Alcotest.(check bool) "no overlap on shared unit" true
                  (sched.Schedule.steps.(i) <> sched.Schedule.steps.(j)))
            binding.Allocate.unit_of)
      binding.Allocate.unit_of
  in
  check_binding area;
  check_binding lp

let test_allocate_low_power_wins () =
  (* low-power binding should not switch more capacitance than area binding *)
  let g = Cdfg.diffeq () in
  let sched = Schedule.list_schedule g ~resources:[ (Module_energy.Multiplier, 2); (Module_energy.Adder, 1) ] in
  let prof = Allocate.profile ~samples:100 g in
  let area = Allocate.bind_greedy_area g sched in
  let lp = Allocate.bind_low_power g sched prof in
  let ca = Allocate.switched_capacitance g sched area prof in
  let cl = Allocate.switched_capacitance g sched lp prof in
  Alcotest.(check bool)
    (Printf.sprintf "lp %.1f <= area %.1f" cl ca)
    true (cl <= ca +. 1e-9)

let test_register_count () =
  let g = Cdfg.diffeq () in
  let sched = Schedule.asap g in
  let r = Allocate.register_count g sched in
  Alcotest.(check bool) "positive registers" true (r > 0)

let test_fir_design_builds_and_works () =
  List.iter
    (fun constant_mult ->
      let d = Fir.build ~width:8 ~constant_mult () in
      Hlp_logic.Netlist.validate d.Fir.net;
      let rng = Hlp_util.Prng.create 5 in
      let trace = Hlp_sim.Streams.uniform rng ~width:8 ~n:60 in
      let expect = Fir.output_reference d trace in
      let sim = Hlp_sim.Funcsim.create d.Fir.net in
      Array.iteri
        (fun k x ->
          let vec = Array.init 8 (fun i -> Hlp_util.Bits.bit x i) in
          Hlp_sim.Funcsim.step sim vec;
          Alcotest.(check int)
            (Printf.sprintf "fir(cm=%b) output cycle %d" constant_mult k)
            expect.(k)
            (Hlp_sim.Funcsim.output_word sim ~prefix:"y"))
        trace)
    [ false; true ]

let test_fir_table1_shape () =
  let before = Fir.measure ~cycles:150 (Fir.build ~width:12 ~constant_mult:false ()) in
  let after = Fir.measure ~cycles:150 (Fir.build ~width:12 ~constant_mult:true ()) in
  Alcotest.(check bool) "total drops at least 2x" true
    (before.Fir.total > 2.0 *. after.Fir.total);
  let find t cat =
    (List.find (fun r -> r.Fir.category = cat) t.Fir.rows).Fir.switched
  in
  Alcotest.(check bool) "exec units collapse" true
    (find before Fir.Exec_units > 4.0 *. find after Fir.Exec_units);
  Alcotest.(check bool) "control grows" true
    (find after Fir.Control_logic > find before Fir.Control_logic);
  Alcotest.(check bool) "interconnect drops" true
    (find after Fir.Interconnect < find before Fir.Interconnect)

let test_branchy_and_diffeq_validate () =
  Cdfg.validate (Cdfg.branchy ());
  Cdfg.validate (Cdfg.diffeq ());
  Cdfg.validate (Cdfg.fir ~coeffs:[ 1; 2; 3 ]);
  Alcotest.(check (list string)) "diffeq inputs" [ "dx"; "u"; "x"; "y" ]
    (List.sort compare (Cdfg.inputs (Cdfg.diffeq ())))

let test_pipelined_binding_modulo_conflicts () =
  (* two multiplies at steps 0 and 2 with 2-cycle latency: compatible in a
     non-pipelined design, conflicting under II = 2 (their occupation
     residues collide), so pipelined binding must use two units *)
  let b = Cdfg.Build.create () in
  let x = Cdfg.Build.input b "x" and y = Cdfg.Build.input b "y" in
  let m1 = Cdfg.Build.mul b x y in
  let m2 = Cdfg.Build.mul b m1 y in
  let g = Cdfg.Build.finish b ~outputs:[ m2 ] in
  let sched = Schedule.asap g in
  let prof = Allocate.profile ~samples:40 g in
  let plain = Allocate.bind_low_power g sched prof in
  let pipelined = Allocate.bind_low_power ~initiation_interval:2 g sched prof in
  let mult_units (binding : Allocate.binding) =
    Option.value ~default:0
      (List.assoc_opt Module_energy.Multiplier binding.Allocate.num_units)
  in
  Alcotest.(check int) "sequential design shares one multiplier" 1 (mult_units plain);
  Alcotest.(check int) "pipelined design needs two" 2 (mult_units pipelined)

let test_quicksynth_functional () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " quick synthesis is correct") true
        (Quicksynth.functional_check g))
    [ ("poly2_direct", Cdfg.poly2_direct ()); ("poly3_horner", Cdfg.poly3_horner ());
      ("diffeq", Cdfg.diffeq ()); ("branchy", Cdfg.branchy ());
      ("fir", Cdfg.fir ~coeffs:[ 1; 2; 4; 2; 1 ]) ]

let test_quicksynth_confirms_transformation_savings () =
  (* the behavioral-level claim of Figs. 4/5, checked on quick-synthesized
     gate-level hardware: the factored forms burn less capacitance *)
  let cap g = Quicksynth.simulate_capacitance ~cycles:400 g in
  Alcotest.(check bool) "fig4 factored cheaper in gates" true
    (cap (Cdfg.poly2_horner ()) < cap (Cdfg.poly2_direct ()));
  Alcotest.(check bool) "fig5 factored cheaper in gates" true
    (cap (Cdfg.poly3_horner ()) < cap (Cdfg.poly3_direct ()));
  (* and the module-energy table agrees in ordering with the gates *)
  let table g = Schedule.energy ~width:8 g in
  Alcotest.(check bool) "table ordering matches gate ordering" true
    (table (Cdfg.poly2_horner ()) < table (Cdfg.poly2_direct ()))

let qcheck_strength_reduction_equivalent =
  QCheck.Test.make ~name:"strength reduction preserves semantics" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 6) (int_bound 63))
    (fun coeffs ->
      QCheck.assume (coeffs <> []);
      let g = Transform.recognize_const_mults (Cdfg.fir ~coeffs) in
      let g' = Transform.strength_reduce g in
      Transform.equivalent ~samples:30 g g')

let qcheck_list_schedule_valid =
  QCheck.Test.make ~name:"list schedule always respects dependencies" ~count:30
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (mults, adders) ->
      let g = Cdfg.diffeq () in
      let s =
        Schedule.list_schedule g
          ~resources:[ (Module_energy.Multiplier, mults); (Module_energy.Adder, adders) ]
      in
      Schedule.verify g s;
      true)

let suite =
  [
    Alcotest.test_case "fig4/5 op counts" `Quick test_poly_figures_op_counts;
    Alcotest.test_case "poly semantics" `Quick test_poly_semantics;
    Alcotest.test_case "poly pairs equivalent" `Quick test_poly_pairs_equivalent;
    Alcotest.test_case "asap/alap" `Quick test_asap_alap;
    Alcotest.test_case "alap below minimum" `Quick test_alap_below_minimum_rejected;
    Alcotest.test_case "list schedule constrained" `Quick test_list_schedule_resource_constrained;
    Alcotest.test_case "list schedule unconstrained" `Quick test_list_schedule_matches_asap_unconstrained;
    Alcotest.test_case "fig4 resource usage" `Quick test_resource_usage_fig4;
    Alcotest.test_case "pm scheduling branchy" `Quick test_pm_scheduling_branchy;
    Alcotest.test_case "pm biased selector" `Quick test_pm_energy_biased_selector;
    Alcotest.test_case "module energy monotone" `Quick test_module_energy_monotone;
    Alcotest.test_case "module energy calibration" `Quick test_module_energy_calibration;
    Alcotest.test_case "voltage single baseline" `Quick test_voltage_single_baseline;
    Alcotest.test_case "voltage saves with slack" `Quick test_voltage_scheduling_saves_energy_with_slack;
    Alcotest.test_case "voltage tight deadline" `Quick test_voltage_tight_deadline_no_scaling;
    Alcotest.test_case "voltage infeasible" `Quick test_voltage_infeasible;
    Alcotest.test_case "voltage curve pareto" `Quick test_voltage_curve_pareto;
    Alcotest.test_case "recognize const mults" `Quick test_transform_recognize_const;
    Alcotest.test_case "strength reduce" `Quick test_transform_strength_reduce;
    Alcotest.test_case "dead elimination" `Quick test_transform_dead_elimination;
    Alcotest.test_case "allocate bindings valid" `Quick test_allocate_profile_and_bindings;
    Alcotest.test_case "allocate low power wins" `Quick test_allocate_low_power_wins;
    Alcotest.test_case "register count" `Quick test_register_count;
    Alcotest.test_case "pipelined binding" `Quick test_pipelined_binding_modulo_conflicts;
    Alcotest.test_case "quicksynth functional" `Quick test_quicksynth_functional;
    Alcotest.test_case "quicksynth transformation savings" `Quick
      test_quicksynth_confirms_transformation_savings;
    Alcotest.test_case "fir functional" `Slow test_fir_design_builds_and_works;
    Alcotest.test_case "fir table1 shape" `Slow test_fir_table1_shape;
    Alcotest.test_case "cdfg examples validate" `Quick test_branchy_and_diffeq_validate;
    QCheck_alcotest.to_alcotest qcheck_strength_reduction_equivalent;
    QCheck_alcotest.to_alcotest qcheck_list_schedule_valid;
  ]
