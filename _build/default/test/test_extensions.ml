(* Tests for the second wave of surveyed techniques: cold scheduling,
   F-test stepwise macro-models, FSM decomposition, memory mapping. *)

(* --- cold scheduling --- *)

let test_coldsched_preserves_results () =
  List.iter
    (fun (name, (prog, mem)) ->
      let r1 = Hlp_isa.Machine.run ~mem_init:mem prog in
      let r2 = Hlp_isa.Machine.run ~mem_init:mem (Hlp_isa.Coldsched.reorder prog) in
      Alcotest.(check bool) (name ^ " same registers") true
        (r1.Hlp_isa.Machine.regs = r2.Hlp_isa.Machine.regs);
      Alcotest.(check int) (name ^ " same instruction count")
        r1.Hlp_isa.Machine.counters.Hlp_isa.Machine.instructions
        r2.Hlp_isa.Machine.counters.Hlp_isa.Machine.instructions)
    (Hlp_isa.Programs.all ())

let test_coldsched_never_hurts () =
  List.iter
    (fun (name, (prog, mem)) ->
      let e = Hlp_isa.Coldsched.measure ~mem_init:mem prog in
      Alcotest.(check bool)
        (Printf.sprintf "%s saving %.3f >= 0" name e.Hlp_isa.Coldsched.saving)
        true
        (e.Hlp_isa.Coldsched.saving >= -1e-9))
    (Hlp_isa.Programs.all ())

let test_coldsched_wins_on_ilp () =
  let prog, mem = Hlp_isa.Programs.vector_kernel ~n:64 in
  let e = Hlp_isa.Coldsched.measure ~mem_init:mem prog in
  Alcotest.(check bool)
    (Printf.sprintf "saving %.3f > 5%%" e.Hlp_isa.Coldsched.saving)
    true
    (e.Hlp_isa.Coldsched.saving > 0.05)

let test_coldsched_basic_blocks () =
  let prog =
    [| Hlp_isa.Isa.Addi (1, 0, 5); Hlp_isa.Isa.Add (2, 2, 1); Hlp_isa.Isa.Bne (1, 0, -2); Hlp_isa.Isa.Halt |]
  in
  let blocks = Hlp_isa.Coldsched.basic_blocks prog in
  (* leaders at 0 (entry), 1 (branch target), 3 (after branch) *)
  Alcotest.(check (list (pair int int))) "blocks" [ (0, 1); (1, 3); (3, 4) ] blocks

let test_coldsched_depends () =
  let open Hlp_isa in
  Alcotest.(check bool) "raw" true (Coldsched.depends (Isa.Addi (1, 0, 5)) (Isa.Add (2, 1, 1)));
  Alcotest.(check bool) "war" true (Coldsched.depends (Isa.Add (2, 1, 1)) (Isa.Addi (1, 0, 5)));
  Alcotest.(check bool) "waw" true (Coldsched.depends (Isa.Addi (1, 0, 5)) (Isa.Addi (1, 0, 6)));
  Alcotest.(check bool) "independent" false
    (Coldsched.depends (Isa.Addi (1, 0, 5)) (Isa.Addi (2, 0, 6)));
  Alcotest.(check bool) "st-ld serialize" true
    (Coldsched.depends (Isa.St (1, 0, 5)) (Isa.Ld (2, 0, 5)));
  Alcotest.(check bool) "ld-ld independent" false
    (Coldsched.depends (Isa.Ld (1, 0, 5)) (Isa.Ld (2, 0, 6)));
  Alcotest.(check bool) "control serializes" true
    (Coldsched.depends (Isa.Beq (0, 0, 1)) (Isa.Addi (1, 0, 5)))

(* --- stepwise F-test regression --- *)

let make_regression_data ?(noise = 0.5) ?(n = 80) seed coefs =
  let rng = Hlp_util.Prng.create seed in
  let p = Array.length coefs in
  let features = Array.init n (fun _ -> Array.init p (fun _ -> Hlp_util.Prng.float rng 10.0)) in
  let response =
    Array.map
      (fun row ->
        let v = ref (Hlp_util.Prng.gaussian rng ~mu:0.0 ~sigma:noise) in
        Array.iteri (fun j c -> v := !v +. (c *. row.(j))) coefs;
        !v)
      features
  in
  (features, response)

let test_stepwise_selects_informative () =
  let features, response = make_regression_data 11 [| 2.0; 0.0; 0.0; 5.0; 0.0 |] in
  let m = Hlp_power.Stepwise.fit ~features ~response () in
  Alcotest.(check (list int)) "selects exactly the true variables" [ 0; 3 ]
    m.Hlp_power.Stepwise.selected;
  Alcotest.(check bool) "good fit" true
    (Hlp_power.Stepwise.r_squared m ~features ~response > 0.98)

let test_stepwise_drops_pure_noise () =
  let rng = Hlp_util.Prng.create 13 in
  let features = Array.init 60 (fun _ -> Array.init 4 (fun _ -> Hlp_util.Prng.float rng 1.0)) in
  let response = Array.init 60 (fun _ -> Hlp_util.Prng.gaussian rng ~mu:5.0 ~sigma:1.0) in
  let m = Hlp_power.Stepwise.fit ~features ~response () in
  Alcotest.(check bool) "selects at most one spurious variable" true
    (List.length m.Hlp_power.Stepwise.selected <= 1)

let test_stepwise_prediction_and_interval () =
  let features, response = make_regression_data ~noise:0.2 17 [| 3.0; 1.0 |] in
  let m = Hlp_power.Stepwise.fit ~features ~response () in
  let row = [| 2.0; 4.0 |] in
  let expect = (3.0 *. 2.0) +. (1.0 *. 4.0) in
  let p = Hlp_power.Stepwise.predict m row in
  Alcotest.(check bool) "prediction close" true (abs_float (p -. expect) < 0.5);
  let lo, hi = Hlp_power.Stepwise.confidence_interval m row in
  Alcotest.(check bool) "interval brackets prediction" true (lo < p && p < hi);
  Alcotest.(check bool) "interval is tight for low noise" true (hi -. lo < 2.0)

let test_stepwise_on_macromodel_features () =
  (* bitwise macro-model features of an adder: the stepwise fit should use
     a subset of pins and still track the census fit *)
  let dut =
    { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 6; widths = [ 6; 6 ] }
  in
  let obs =
    List.map (Hlp_power.Macromodel.observe dut) (Hlp_power.Macromodel.training_streams dut)
  in
  let features =
    Array.of_list
      (List.map
         (fun o ->
           Array.concat
             (List.map
                (fun a -> a.Hlp_sim.Activity.activity)
                o.Hlp_power.Macromodel.stats.Hlp_power.Macromodel.in_acts))
         obs)
  in
  let response = Array.of_list (List.map (fun o -> o.Hlp_power.Macromodel.cap) obs) in
  let m = Hlp_power.Stepwise.fit ~features ~response () in
  Alcotest.(check bool) "selected at least one pin" true
    (m.Hlp_power.Stepwise.selected <> []);
  Alcotest.(check bool) "explains most variance" true
    (Hlp_power.Stepwise.r_squared m ~features ~response > 0.8)

(* --- FSM decomposition --- *)

let reactive_case () =
  let stg = Hlp_fsm.Stg.reactive ~wait_states:6 ~burst_states:6 in
  let dist =
    Hlp_fsm.Markov.analyze ~input_prob:(fun i -> if i = 1 then 0.05 else 0.95) stg
  in
  (stg, dist)

let test_decompose_structure () =
  let stg, dist = reactive_case () in
  let part = Hlp_fsm.Decompose.balanced_min_cut (Hlp_util.Prng.create 3) stg dist in
  let d = Hlp_fsm.Decompose.decompose stg dist part in
  Hlp_fsm.Stg.validate d.Hlp_fsm.Decompose.sub_a;
  Hlp_fsm.Stg.validate d.Hlp_fsm.Decompose.sub_b;
  let na = d.Hlp_fsm.Decompose.sub_a.Hlp_fsm.Stg.num_states in
  let nb = d.Hlp_fsm.Decompose.sub_b.Hlp_fsm.Stg.num_states in
  (* each half has its states plus one wait state *)
  Alcotest.(check int) "states partitioned" (stg.Hlp_fsm.Stg.num_states + 2) (na + nb)

let test_decompose_behaviour_preserved_within_half () =
  let stg, dist = reactive_case () in
  let part = Hlp_fsm.Decompose.balanced_min_cut (Hlp_util.Prng.create 3) stg dist in
  let d = Hlp_fsm.Decompose.decompose stg dist part in
  (* for every resident state and input whose successor stays resident, the
     submachine must replicate transition and output *)
  let check sub keep =
    let locals =
      List.filter keep (List.init stg.Hlp_fsm.Stg.num_states (fun s -> s))
    in
    List.iteri
      (fun l s ->
        for i = 0 to Hlp_fsm.Stg.num_inputs stg - 1 do
          let s' = stg.Hlp_fsm.Stg.next.(s).(i) in
          if keep s' then begin
            let l' =
              let rec find k = function
                | [] -> Alcotest.fail "missing local"
                | x :: rest -> if x = s' then k else find (k + 1) rest
              in
              find 0 locals
            in
            Alcotest.(check int) "next preserved" l' sub.Hlp_fsm.Stg.next.(l).(i);
            Alcotest.(check int) "output preserved"
              stg.Hlp_fsm.Stg.output.(s).(i)
              sub.Hlp_fsm.Stg.output.(l).(i)
          end
          else
            (* leaving the half parks in the wait state (last index) *)
            Alcotest.(check int) "exits to wait"
              (sub.Hlp_fsm.Stg.num_states - 1)
              sub.Hlp_fsm.Stg.next.(l).(i)
        done)
      locals
  in
  check d.Hlp_fsm.Decompose.sub_a (fun s -> not part.(s));
  check d.Hlp_fsm.Decompose.sub_b (fun s -> part.(s))

let test_decompose_low_crossing () =
  let stg, dist = reactive_case () in
  let part = Hlp_fsm.Decompose.balanced_min_cut (Hlp_util.Prng.create 3) stg dist in
  let cross = Hlp_fsm.Decompose.crossing_probability stg dist part in
  Alcotest.(check bool) (Printf.sprintf "crossing %.3f < 0.2" cross) true (cross < 0.2);
  (* the wait/burst split is the natural cut: both halves populated *)
  let in_b = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 part in
  Alcotest.(check bool) "both halves populated" true
    (in_b >= 2 && in_b <= stg.Hlp_fsm.Stg.num_states - 2)

let test_decompose_saves_power () =
  let stg, dist = reactive_case () in
  let part = Hlp_fsm.Decompose.balanced_min_cut (Hlp_util.Prng.create 3) stg dist in
  let d = Hlp_fsm.Decompose.decompose stg dist part in
  let ev = Hlp_fsm.Decompose.evaluate stg d in
  Alcotest.(check bool)
    (Printf.sprintf "saving %.2f positive" ev.Hlp_fsm.Decompose.saving)
    true
    (ev.Hlp_fsm.Decompose.saving > 0.0)

(* --- memory mapping --- *)

let memmap_case () =
  let arrays = [ ("a", 100); ("b", 100); ("c", 60); ("d", 200) ] in
  let acc = Hlp_bus.Memmap.interleaved_workload (Hlp_util.Prng.create 5) arrays ~n:3000 in
  (arrays, acc)

let test_memmap_packing_disjoint () =
  let arrays, _ = memmap_case () in
  List.iter
    (fun bases ->
      let sizes = Array.of_list (List.map snd arrays) in
      (* arrays must not overlap *)
      let spans =
        List.sort compare
          (List.init (Array.length bases) (fun i -> (bases.(i), bases.(i) + sizes.(i))))
      in
      let rec check = function
        | (_, e1) :: ((s2, _) :: _ as rest) ->
            Alcotest.(check bool) "disjoint" true (e1 <= s2);
            check rest
        | _ -> ()
      in
      check spans)
    [ Hlp_bus.Memmap.naive_bases arrays; Hlp_bus.Memmap.aligned_bases arrays;
      Hlp_bus.Memmap.optimize (Hlp_util.Prng.create 7) ~width:12 arrays
        (snd (memmap_case ())) ]

let test_memmap_optimize_beats_naive () =
  let arrays, acc = memmap_case () in
  let width = 12 in
  let naive = Hlp_bus.Memmap.transitions ~width ~bases:(Hlp_bus.Memmap.naive_bases arrays) acc in
  let opt_bases = Hlp_bus.Memmap.optimize (Hlp_util.Prng.create 7) ~width arrays acc in
  let opt = Hlp_bus.Memmap.transitions ~width ~bases:opt_bases acc in
  Alcotest.(check bool)
    (Printf.sprintf "optimized %d <= naive %d" opt naive)
    true (opt <= naive);
  Alcotest.(check bool) "meaningful saving" true
    (float_of_int opt < 0.95 *. float_of_int naive)

let test_memmap_addresses_in_range () =
  let arrays, acc = memmap_case () in
  let bases = Hlp_bus.Memmap.optimize (Hlp_util.Prng.create 9) ~width:12 arrays acc in
  let trace = Hlp_bus.Memmap.address_trace ~bases acc in
  Array.iter
    (fun a -> Alcotest.(check bool) "address fits bus" true (a >= 0 && a < 1 lsl 12))
    trace

(* --- register binding --- *)

let test_register_binding_valid_and_wins () =
  let g = Hlp_rtl.Cdfg.diffeq () in
  let sched =
    Hlp_rtl.Schedule.list_schedule g ~resources:[ (Hlp_rtl.Module_energy.Multiplier, 2) ]
  in
  let prof = Hlp_rtl.Allocate.profile ~samples:120 g in
  let area = Hlp_rtl.Allocate.bind_registers_area g sched in
  let lp = Hlp_rtl.Allocate.bind_registers_low_power g sched prof in
  Alcotest.(check bool) "positive register count" true (area.Hlp_rtl.Allocate.num_regs > 0);
  (* no two simultaneously-live values share a register (both bindings) *)
  let check (b : Hlp_rtl.Allocate.reg_binding) =
    Array.iteri
      (fun i ri ->
        if ri >= 0 then
          Array.iteri
            (fun j rj ->
              if j > i && rj = ri then
                Alcotest.(check bool) "disjoint lifetimes on shared register" false
                  (let si = sched.Hlp_rtl.Schedule.steps.(i)
                   and sj = sched.Hlp_rtl.Schedule.steps.(j) in
                   si = sj))
            b.Hlp_rtl.Allocate.reg_of)
      b.Hlp_rtl.Allocate.reg_of
  in
  check area;
  check lp;
  let ca = Hlp_rtl.Allocate.register_switched_capacitance g sched area prof in
  let cl = Hlp_rtl.Allocate.register_switched_capacitance g sched lp prof in
  Alcotest.(check bool)
    (Printf.sprintf "lp registers %.1f <= area %.1f" cl ca)
    true (cl <= ca +. 1e-9);
  Alcotest.(check bool) "same register count after compaction" true
    (lp.Hlp_rtl.Allocate.num_regs <= area.Hlp_rtl.Allocate.num_regs + 1)

(* --- don't-care retargeting --- *)

let test_dc_retarget_preserves_behaviour () =
  (* machine with duplicated states so equivalence classes are nontrivial *)
  let stg =
    Hlp_fsm.Stg.create ~name:"dup" ~input_bits:1 ~output_bits:1 ~num_states:6
      ~next:(fun s i ->
        match (s, i) with
        | 0, 0 -> 1 | 0, _ -> 4
        | 1, 0 -> 2 | 1, _ -> 5
        | 2, _ -> 0
        | 3, 0 -> 1 | 3, _ -> 4
        | 4, 0 -> 5 | 4, _ -> 2
        | _, _ -> 3)
      ~output:(fun s _ -> s mod 2)
      ()
  in
  let enc = Hlp_fsm.Encode.natural stg in
  let retargeted = Hlp_fsm.Minimize.dc_retarget stg enc in
  Hlp_fsm.Stg.validate retargeted;
  let rng = Hlp_util.Prng.create 7 in
  let seq = List.init 400 (fun _ -> Hlp_util.Prng.int rng 2) in
  let _, o1 = Hlp_fsm.Stg.simulate stg seq in
  let _, o2 = Hlp_fsm.Stg.simulate retargeted seq in
  Alcotest.(check (list int)) "same observable behaviour" o1 o2

let test_dc_retarget_never_increases_switching () =
  List.iter
    (fun stg ->
      let dist = Hlp_fsm.Markov.analyze stg in
      let enc = Hlp_fsm.Encode.natural stg in
      let retargeted = Hlp_fsm.Minimize.dc_retarget stg enc in
      let dist' = Hlp_fsm.Markov.analyze retargeted in
      let cost m d =
        Hlp_fsm.Markov.expected_hamming m d ~code:(fun s -> enc.Hlp_fsm.Encode.code.(s))
      in
      Alcotest.(check bool)
        (stg.Hlp_fsm.Stg.name ^ " switching not increased")
        true
        (cost retargeted dist' <= cost stg dist +. 1e-9))
    (Hlp_fsm.Stg.zoo_extended ())

(* --- traced machine runs --- *)

let test_run_traced_streams () =
  let prog, mem = Hlp_isa.Programs.matmul ~n:6 in
  let r, traces = Hlp_isa.Machine.run_traced ~mem_init:mem prog in
  Alcotest.(check int) "one pc per instruction"
    r.Hlp_isa.Machine.counters.Hlp_isa.Machine.instructions
    (Array.length traces.Hlp_isa.Machine.pcs);
  Alcotest.(check int) "one address per memory op"
    (r.Hlp_isa.Machine.counters.Hlp_isa.Machine.mem_reads
    + r.Hlp_isa.Machine.counters.Hlp_isa.Machine.mem_writes)
    (Array.length traces.Hlp_isa.Machine.data_addrs);
  (* pc stream is mostly sequential: binary transitions/word well below
     random (the premise of Gray/T0 addressing) *)
  let t =
    Hlp_bus.Encoding.evaluate Hlp_bus.Encoding.Binary ~width:16 traces.Hlp_isa.Machine.pcs
  in
  Alcotest.(check bool)
    (Printf.sprintf "pc stream structured (%.2f trans/word)" t.Hlp_bus.Encoding.per_word)
    true
    (t.Hlp_bus.Encoding.per_word < 4.0)

let test_bus_encoding_on_real_pc_trace () =
  let prog, mem = Hlp_isa.Programs.fir ~taps:8 ~samples:64 in
  let _, traces = Hlp_isa.Machine.run_traced ~mem_init:mem prog in
  let width = 16 in
  let eval s = (Hlp_bus.Encoding.evaluate s ~width traces.Hlp_isa.Machine.pcs).Hlp_bus.Encoding.per_word in
  let binary = eval Hlp_bus.Encoding.Binary in
  let gray = eval Hlp_bus.Encoding.Gray_code in
  let t0 = eval Hlp_bus.Encoding.T0 in
  Alcotest.(check bool)
    (Printf.sprintf "gray %.3f < binary %.3f on fetch" gray binary)
    true (gray < binary);
  Alcotest.(check bool)
    (Printf.sprintf "t0 %.3f < binary %.3f on fetch" t0 binary)
    true (t0 < binary)

let qcheck_coldsched_safe =
  QCheck.Test.make ~name:"cold scheduling never changes program results" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      (* random straight-line-ish programs via the profile synthesizer *)
      let profile =
        {
          Hlp_isa.Profile.mix =
            [ (Hlp_isa.Isa.Alu, 0.55); (Hlp_isa.Isa.Mulc, 0.1); (Hlp_isa.Isa.Mem, 0.2);
              (Hlp_isa.Isa.Branch, 0.15); (Hlp_isa.Isa.Other, 0.0) ];
          icache_miss_rate = 0.01;
          dcache_miss_rate = 0.2;
          branch_taken_rate = 0.3;
          stall_rate = 0.1;
          energy_per_cycle = 0.0;
          instructions = 0;
        }
      in
      let prog, mem = Hlp_isa.Profile.synthesize ~seed profile in
      let r1 = Hlp_isa.Machine.run ~mem_init:mem prog in
      let r2 = Hlp_isa.Machine.run ~mem_init:mem (Hlp_isa.Coldsched.reorder prog) in
      r1.Hlp_isa.Machine.regs = r2.Hlp_isa.Machine.regs)

let suite =
  [
    Alcotest.test_case "coldsched preserves results" `Quick test_coldsched_preserves_results;
    Alcotest.test_case "coldsched never hurts" `Quick test_coldsched_never_hurts;
    Alcotest.test_case "coldsched wins on ilp" `Quick test_coldsched_wins_on_ilp;
    Alcotest.test_case "coldsched basic blocks" `Quick test_coldsched_basic_blocks;
    Alcotest.test_case "coldsched depends" `Quick test_coldsched_depends;
    Alcotest.test_case "stepwise selects informative" `Quick test_stepwise_selects_informative;
    Alcotest.test_case "stepwise drops noise" `Quick test_stepwise_drops_pure_noise;
    Alcotest.test_case "stepwise interval" `Quick test_stepwise_prediction_and_interval;
    Alcotest.test_case "stepwise on macromodel" `Quick test_stepwise_on_macromodel_features;
    Alcotest.test_case "decompose structure" `Quick test_decompose_structure;
    Alcotest.test_case "decompose behaviour" `Quick test_decompose_behaviour_preserved_within_half;
    Alcotest.test_case "decompose low crossing" `Quick test_decompose_low_crossing;
    Alcotest.test_case "decompose saves" `Quick test_decompose_saves_power;
    Alcotest.test_case "memmap disjoint" `Quick test_memmap_packing_disjoint;
    Alcotest.test_case "memmap beats naive" `Quick test_memmap_optimize_beats_naive;
    Alcotest.test_case "memmap in range" `Quick test_memmap_addresses_in_range;
    Alcotest.test_case "register binding" `Quick test_register_binding_valid_and_wins;
    Alcotest.test_case "dc retarget behaviour" `Quick test_dc_retarget_preserves_behaviour;
    Alcotest.test_case "dc retarget switching" `Quick test_dc_retarget_never_increases_switching;
    Alcotest.test_case "run traced" `Quick test_run_traced_streams;
    Alcotest.test_case "bus encoding on real traces" `Quick test_bus_encoding_on_real_pc_trace;
    QCheck_alcotest.to_alcotest qcheck_coldsched_safe;
  ]
