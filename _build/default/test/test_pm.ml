open Hlp_pm

let device = Policy.default_device

let workload ?(sessions = 8000) seed =
  Policy.workload ~sessions (Hlp_util.Prng.create seed)

let test_breakeven () =
  let be = Policy.breakeven device in
  Alcotest.(check bool) "positive" true (be > 0.0);
  (* staying idle for exactly the breakeven time costs the same as an
     immediate shutdown + restart *)
  let idle_cost = device.Policy.p_idle *. be in
  let off_cost = (device.Policy.p_off *. be) +. device.Policy.e_wakeup in
  Alcotest.(check (float 1e-9)) "equal cost" idle_cost off_cost

let test_always_on_is_identity () =
  let w = workload 1 in
  let s = Policy.simulate device Policy.Always_on w in
  Alcotest.(check (float 1e-6)) "improvement 1" 1.0 s.Policy.improvement;
  Alcotest.(check (float 1e-9)) "no delay" 0.0 s.Policy.delay_penalty;
  Alcotest.(check int) "no shutdowns" 0 s.Policy.shutdowns

let test_oracle_is_lower_bound () =
  let w = workload 2 in
  let oracle = Policy.simulate device Policy.Oracle w in
  List.iter
    (fun p ->
      let s = Policy.simulate device p w in
      Alcotest.(check bool)
        (Policy.policy_name p ^ " above oracle")
        true
        (s.Policy.energy >= oracle.Policy.energy -. 1e-6))
    [ Policy.Always_on; Policy.Timeout 5.0; Policy.Timeout 20.0;
      Policy.Threshold 1.0; Policy.Regression;
      Policy.Exp_average { alpha = 0.3; prewake = false };
      Policy.Exp_average { alpha = 0.3; prewake = true } ]

let test_every_policy_beats_always_on () =
  let w = workload 3 in
  List.iter
    (fun p ->
      let s = Policy.simulate device p w in
      Alcotest.(check bool)
        (Printf.sprintf "%s improvement %.2f > 2" (Policy.policy_name p) s.Policy.improvement)
        true
        (s.Policy.improvement > 2.0))
    [ Policy.Timeout 5.0; Policy.Threshold 1.0; Policy.Regression;
      Policy.Exp_average { alpha = 0.3; prewake = false } ]

let test_predictive_beats_static () =
  let w = workload 4 in
  let timeout = Policy.simulate device (Policy.Timeout 5.0) w in
  let regression = Policy.simulate device Policy.Regression w in
  Alcotest.(check bool)
    (Printf.sprintf "regression %.2fx > timeout %.2fx" regression.Policy.improvement
       timeout.Policy.improvement)
    true
    (regression.Policy.improvement > timeout.Policy.improvement)

let test_longer_timeout_wastes_more () =
  let w = workload 5 in
  let t5 = Policy.simulate device (Policy.Timeout 5.0) w in
  let t40 = Policy.simulate device (Policy.Timeout 40.0) w in
  Alcotest.(check bool) "short timeout saves more" true
    (t5.Policy.improvement > t40.Policy.improvement)

let test_delay_penalty_small () =
  let w = workload 6 in
  List.iter
    (fun p ->
      let s = Policy.simulate device p w in
      Alcotest.(check bool)
        (Printf.sprintf "%s delay %.3f%% < 3%%" (Policy.policy_name p)
           (100.0 *. s.Policy.delay_penalty))
        true
        (s.Policy.delay_penalty < 0.03))
    [ Policy.Timeout 5.0; Policy.Regression;
      Policy.Exp_average { alpha = 0.3; prewake = false } ]

let test_exp_average_lower_delay_than_regression () =
  let w = workload 7 in
  let regression = Policy.simulate device Policy.Regression w in
  let hwang = Policy.simulate device (Policy.Exp_average { alpha = 0.3; prewake = false }) w in
  Alcotest.(check bool)
    (Printf.sprintf "hwang delay %.4f <= regression %.4f" hwang.Policy.delay_penalty
       regression.Policy.delay_penalty)
    true
    (hwang.Policy.delay_penalty <= regression.Policy.delay_penalty)

let test_workload_statistics () =
  let w = workload ~sessions:20_000 8 in
  let actives = Array.map (fun s -> s.Policy.active) w in
  let idles = Array.map (fun s -> s.Policy.idle) w in
  Alcotest.(check bool) "positive actives" true (Array.for_all (fun a -> a > 0.0) actives);
  Alcotest.(check bool) "positive idles" true (Array.for_all (fun i -> i > 0.0) idles);
  (* idle time dominates (the premise of system-level power management) *)
  let ta = Array.fold_left ( +. ) 0.0 actives and ti = Array.fold_left ( +. ) 0.0 idles in
  Alcotest.(check bool) "idle dominates" true (ti > 5.0 *. ta)

let test_max_improvement_bound () =
  (* the paper's bound: improvement <= 1 + T_I / T_A when idle power equals
     active power; with p_idle < p_active it is even smaller *)
  let w = workload 9 in
  let ta = Array.fold_left (fun acc s -> acc +. s.Policy.active) 0.0 w in
  let ti = Array.fold_left (fun acc s -> acc +. s.Policy.idle) 0.0 w in
  let bound = 1.0 +. (ti /. ta) in
  List.iter
    (fun p ->
      let s = Policy.simulate device p w in
      Alcotest.(check bool)
        (Printf.sprintf "%s %.1fx <= bound %.1fx" (Policy.policy_name p)
           s.Policy.improvement bound)
        true
        (s.Policy.improvement <= bound))
    [ Policy.Oracle; Policy.Timeout 5.0; Policy.Regression ]

let test_energy_accounting_consistent () =
  (* timeout with an enormous threshold behaves like always-on *)
  let w = workload 10 in
  let never = Policy.simulate device (Policy.Timeout 1e12) w in
  let on = Policy.simulate device Policy.Always_on w in
  Alcotest.(check (float 1e-6)) "never-firing timeout = always on"
    on.Policy.energy never.Policy.energy

(* --- multi-depth shutdown --- *)

let test_multistate_breakevens_ordered () =
  let d = Multistate.default_device in
  match d.Multistate.sleep_states with
  | [ doze; off ] ->
      Alcotest.(check bool) "deeper state has larger breakeven" true
        (Multistate.breakeven d off > Multistate.breakeven d doze)
  | _ -> Alcotest.fail "expected two sleep states"

let test_multistate_best_state () =
  let d = Multistate.default_device in
  (* very short idle: stay idle; medium: doze; long: off *)
  Alcotest.(check bool) "tiny idle stays" true (Multistate.best_state_for d 0.1 = None);
  (match Multistate.best_state_for d 2.0 with
  | Some s -> Alcotest.(check string) "medium dozes" "doze" s.Multistate.label
  | None -> Alcotest.fail "medium idle should sleep");
  match Multistate.best_state_for d 100.0 with
  | Some s -> Alcotest.(check string) "long powers off" "off" s.Multistate.label
  | None -> Alcotest.fail "long idle should sleep"

let test_multistate_depth_choice_wins () =
  let d = Multistate.default_device in
  let w = workload ~sessions:12_000 20 in
  let deepest = Multistate.simulate d Multistate.Deepest_only w in
  let oracle = Multistate.simulate d Multistate.Oracle_depth w in
  let predictive = Multistate.simulate d (Multistate.Predictive_depth 0.3) w in
  Alcotest.(check bool)
    (Printf.sprintf "oracle %.2fx > deepest %.2fx" oracle.Multistate.improvement
       deepest.Multistate.improvement)
    true
    (oracle.Multistate.improvement > deepest.Multistate.improvement);
  Alcotest.(check bool)
    (Printf.sprintf "predictive %.2fx > deepest %.2fx" predictive.Multistate.improvement
       deepest.Multistate.improvement)
    true
    (predictive.Multistate.improvement > deepest.Multistate.improvement);
  Alcotest.(check bool) "predictive cuts delay too" true
    (predictive.Multistate.delay_penalty < deepest.Multistate.delay_penalty);
  (* the oracle uses both depths *)
  Alcotest.(check int) "two depths in use" 2
    (List.length oracle.Multistate.depth_histogram)

let qcheck_improvement_at_least_one =
  QCheck.Test.make ~name:"oracle never loses to always-on" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let w = workload ~sessions:500 seed in
      let s = Policy.simulate device Policy.Oracle w in
      s.Policy.improvement >= 1.0 -. 1e-9)

let suite =
  [
    Alcotest.test_case "breakeven" `Quick test_breakeven;
    Alcotest.test_case "always-on identity" `Quick test_always_on_is_identity;
    Alcotest.test_case "oracle lower bound" `Quick test_oracle_is_lower_bound;
    Alcotest.test_case "policies beat always-on" `Quick test_every_policy_beats_always_on;
    Alcotest.test_case "predictive beats static" `Quick test_predictive_beats_static;
    Alcotest.test_case "longer timeout wastes" `Quick test_longer_timeout_wastes_more;
    Alcotest.test_case "delay penalty < 3%" `Quick test_delay_penalty_small;
    Alcotest.test_case "hwang-wu lower delay" `Quick test_exp_average_lower_delay_than_regression;
    Alcotest.test_case "workload statistics" `Quick test_workload_statistics;
    Alcotest.test_case "improvement bound" `Quick test_max_improvement_bound;
    Alcotest.test_case "energy accounting" `Quick test_energy_accounting_consistent;
    Alcotest.test_case "multistate breakevens" `Quick test_multistate_breakevens_ordered;
    Alcotest.test_case "multistate best state" `Quick test_multistate_best_state;
    Alcotest.test_case "multistate depth wins" `Quick test_multistate_depth_choice_wins;
    QCheck_alcotest.to_alcotest qcheck_improvement_at_least_one;
  ]
