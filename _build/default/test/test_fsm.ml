open Hlp_fsm

let test_counter_fsm_behaviour () =
  let stg = Stg.counter_fsm ~bits:3 in
  Stg.validate stg;
  (* enable for 10 cycles: ends at 10 mod 8 = 2 *)
  let final, outs = Stg.simulate stg (List.init 10 (fun _ -> 1)) in
  Alcotest.(check int) "final state" 2 final;
  Alcotest.(check int) "first output is initial state" 0 (List.hd outs);
  (* disabled: stays at reset *)
  let final2, _ = Stg.simulate stg (List.init 10 (fun _ -> 0)) in
  Alcotest.(check int) "disabled stays" 0 final2

let test_sequence_detector () =
  let stg = Stg.sequence_detector ~pattern:[ true; false; true ] in
  Stg.validate stg;
  (* stream 1 0 1 0 1: matches at positions 2 and 4 (overlapping) *)
  let _, outs = Stg.simulate stg [ 1; 0; 1; 0; 1 ] in
  Alcotest.(check (list int)) "detections" [ 0; 0; 1; 0; 1 ] outs

let test_reactive_idles () =
  let stg = Stg.reactive ~wait_states:3 ~burst_states:2 in
  Stg.validate stg;
  let final, outs = Stg.simulate stg [ 0; 0; 0 ] in
  Alcotest.(check int) "still waiting" 0 final;
  Alcotest.(check (list int)) "quiet output" [ 0; 0; 0 ] outs;
  let final2, _ = Stg.simulate stg [ 1; 0 ] in
  Alcotest.(check bool) "entered burst" true (final2 >= 3)

let test_reachable () =
  let stg = Stg.counter_fsm ~bits:2 in
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id (Stg.reachable stg))

let test_kiss_roundtrip () =
  List.iter
    (fun stg ->
      let text = Stg.to_kiss stg in
      let back = Stg.of_kiss text in
      Stg.validate back;
      Alcotest.(check int) "states" stg.Stg.num_states back.Stg.num_states;
      Alcotest.(check int) "inputs" stg.Stg.input_bits back.Stg.input_bits;
      (* behaviour must match on a random input sequence *)
      let rng = Hlp_util.Prng.create 11 in
      let seq = List.init 200 (fun _ -> Hlp_util.Prng.int rng (Stg.num_inputs stg)) in
      let _, o1 = Stg.simulate stg seq and _, o2 = Stg.simulate back seq in
      Alcotest.(check (list int)) "same outputs" o1 o2)
    (Stg.zoo ())

let test_kiss_dont_care () =
  let text = ".i 2\n.o 1\n.s 2\n.r s0\n-1 s0 s1 1\n00 s0 s0 0\n10 s0 s0 0\n-- s1 s0 0\n" in
  let stg = Stg.of_kiss text in
  Stg.validate stg;
  (* input word 01 (bit0=1) and 11 (bits both) go to s1 *)
  Alcotest.(check int) "next on x1" 1 stg.Stg.next.(0).(1);
  Alcotest.(check int) "next on 11" 1 stg.Stg.next.(0).(3);
  Alcotest.(check int) "next on 00" 0 stg.Stg.next.(0).(0);
  Alcotest.(check int) "s1 always back" 0 stg.Stg.next.(1).(2)

let test_markov_counter_uniform () =
  (* enabled counter with uniform enable: all states equally likely *)
  let stg = Stg.counter_fsm ~bits:3 in
  let dist = Markov.analyze stg in
  Array.iter
    (fun p -> Alcotest.(check (float 0.01)) "uniform occupancy" 0.125 p)
    dist.Markov.state_prob;
  (* self loop prob = P(enable=0) = 0.5 *)
  Alcotest.(check (float 0.01)) "self loops" 0.5 (Markov.self_loop_probability dist)

let test_markov_probabilities_sum () =
  List.iter
    (fun stg ->
      let dist = Markov.analyze stg in
      let total_state = Array.fold_left ( +. ) 0.0 dist.Markov.state_prob in
      Alcotest.(check (float 1e-6)) "state probs sum to 1" 1.0 total_state;
      let total_trans =
        Array.fold_left
          (fun acc row -> Array.fold_left ( +. ) acc row)
          0.0 dist.Markov.trans_prob
      in
      Alcotest.(check (float 1e-6)) "transition probs sum to 1" 1.0 total_trans)
    (Stg.zoo ())

let test_markov_input_bias () =
  (* reactive machine with rare requests spends most time idle *)
  let stg = Stg.reactive ~wait_states:2 ~burst_states:4 in
  let dist =
    Markov.analyze ~input_prob:(fun i -> if i = 1 then 0.02 else 0.98) stg
  in
  Alcotest.(check bool) "mostly idle" true (Markov.self_loop_probability dist > 0.6)

let test_expected_hamming_counter () =
  (* always-enabled counter under natural encoding: expected hamming is
     the average carry-chain length = sum over bits of 2^-b = 2 - 2^(1-B) *)
  let stg = Stg.counter_fsm ~bits:3 in
  let dist = Markov.analyze ~input_prob:(fun i -> if i = 1 then 1.0 else 0.0) stg in
  let enc = Encode.natural stg in
  let h = Encode.cost stg dist enc in
  Alcotest.(check (float 0.02)) "counter hamming" 1.75 h;
  (* gray encoding: exactly 1 bit flips per increment *)
  let g = Encode.cost stg dist (Encode.gray stg) in
  Alcotest.(check (float 0.02)) "gray hamming" 1.0 g

let test_one_hot_two_flips () =
  let stg = Stg.counter_fsm ~bits:3 in
  let dist = Markov.analyze ~input_prob:(fun i -> if i = 1 then 1.0 else 0.0) stg in
  let oh = Encode.cost stg dist (Encode.one_hot stg) in
  Alcotest.(check (float 0.02)) "one-hot hamming" 2.0 oh

let test_encodings_injective () =
  List.iter
    (fun stg ->
      let rng = Hlp_util.Prng.create 3 in
      List.iter
        (fun enc ->
          Alcotest.(check bool) "injective" true (Encode.is_injective enc))
        [ Encode.natural stg; Encode.gray stg; Encode.one_hot stg;
          Encode.random rng stg ])
    (Stg.zoo ())

let test_anneal_improves () =
  (* annealing should not be worse than the natural encoding *)
  let rng = Hlp_util.Prng.create 17 in
  List.iter
    (fun stg ->
      let dist = Markov.analyze stg in
      let nat = Encode.cost stg dist (Encode.natural stg) in
      let ann = Encode.anneal ~iterations:4000 rng stg dist in
      Alcotest.(check bool) "injective" true (Encode.is_injective ann);
      Alcotest.(check bool) "no worse than natural" true
        (Encode.cost stg dist ann <= nat +. 1e-9))
    (Stg.zoo ())

let test_reencode_improves () =
  let rng = Hlp_util.Prng.create 23 in
  let stg = Stg.random_fsm (Hlp_util.Prng.create 5) ~states:14 ~input_bits:2 ~output_bits:2 in
  let dist = Markov.analyze stg in
  let start = Encode.random rng stg in
  let improved = Encode.reencode ~iterations:4000 rng stg dist start in
  Alcotest.(check bool) "reencode no worse" true
    (Encode.cost stg dist improved <= Encode.cost stg dist start +. 1e-9)

let test_synth_counter_behaviour () =
  (* synthesized counter netlist must count like the STG *)
  let stg = Stg.counter_fsm ~bits:3 in
  let r = Synth.synthesize stg in
  let sim = Hlp_sim.Funcsim.create r.Synth.net in
  (* Mealy reading during cycle k: state has absorbed k - 1 increments *)
  for k = 1 to 20 do
    Hlp_sim.Funcsim.step sim [| true |];
    Alcotest.(check int)
      (Printf.sprintf "output after %d" k)
      ((k - 1) mod 8)
      (Hlp_sim.Funcsim.output_word sim ~prefix:"o")
  done

let test_synth_matches_stg_randomly () =
  List.iter
    (fun stg ->
      let r = Synth.synthesize stg in
      let sim = Hlp_sim.Funcsim.create r.Synth.net in
      let rng = Hlp_util.Prng.create 31 in
      let inputs = List.init 300 (fun _ -> Hlp_util.Prng.int rng (Stg.num_inputs stg)) in
      let _, expect = Stg.simulate stg inputs in
      let got =
        List.map
          (fun i ->
            let vec =
              Array.init stg.Stg.input_bits (fun b -> Hlp_util.Bits.bit i b)
            in
            Hlp_sim.Funcsim.step sim vec;
            Hlp_sim.Funcsim.output_word sim ~prefix:"o")
          inputs
      in
      Alcotest.(check (list int)) ("synth " ^ stg.Stg.name) expect got)
    (Stg.zoo ())

let test_synth_one_hot_matches_too () =
  let stg = Stg.sequence_detector ~pattern:[ true; true; false ] in
  let r = Synth.synthesize ~encoding:(Encode.one_hot stg) stg in
  let sim = Hlp_sim.Funcsim.create r.Synth.net in
  let rng = Hlp_util.Prng.create 37 in
  let inputs = List.init 200 (fun _ -> Hlp_util.Prng.int rng 2) in
  let _, expect = Stg.simulate stg inputs in
  let got =
    List.map
      (fun i ->
        Hlp_sim.Funcsim.step sim [| i = 1 |];
        Hlp_sim.Funcsim.output_word sim ~prefix:"o")
      inputs
  in
  Alcotest.(check (list int)) "one-hot synth" expect got

let test_minimize_redundant_machine () =
  (* build a machine with duplicated states: a 2-state toggle duplicated *)
  let stg =
    Stg.create ~name:"dup" ~input_bits:0 ~output_bits:1 ~num_states:4
      ~next:(fun s _ -> [| 1; 2; 3; 0 |].(s))
      ~output:(fun s _ -> s mod 2)
      ()
  in
  let minimized, mapping = Minimize.minimize stg in
  Stg.validate minimized;
  Alcotest.(check int) "collapses to 2" 2 minimized.Stg.num_states;
  Alcotest.(check int) "even states together" mapping.(0) mapping.(2);
  (* behaviour preserved *)
  let seq = List.init 50 (fun _ -> 0) in
  let _, o1 = Stg.simulate stg seq and _, o2 = Stg.simulate minimized seq in
  Alcotest.(check (list int)) "same trace" o1 o2

let test_minimize_irreducible () =
  let stg = Stg.sequence_detector ~pattern:[ true; false; true ] in
  let minimized, _ = Minimize.minimize stg in
  Alcotest.(check int) "already minimal" stg.Stg.num_states minimized.Stg.num_states

let test_tyagi_bound_holds () =
  List.iter
    (fun stg ->
      let dist = Markov.analyze stg in
      let r = Tyagi.report stg dist in
      Alcotest.(check bool) "entropy nonneg" true (r.Tyagi.entropy >= 0.0);
      List.iter
        (fun enc ->
          Alcotest.(check bool)
            ("bound holds: " ^ stg.Stg.name)
            true
            (Tyagi.holds stg dist ~code:(fun s -> enc.Encode.code.(s))))
        [ Encode.natural stg; Encode.gray stg; Encode.one_hot stg ])
    (Stg.zoo ())

let test_kiss_benchmark_controllers () =
  let tl = Stg.traffic_light () in
  Stg.validate tl;
  Alcotest.(check int) "traffic states" 4 tl.Stg.num_states;
  (* with no cross-traffic request the light stays green *)
  let final, _ = Stg.simulate tl [ 0; 0; 0; 0 ] in
  Alcotest.(check int) "stays green" tl.Stg.reset final;
  (* a request walks GREEN -> YELLOW -> RED *)
  let final2, outs = Stg.simulate tl [ 1; 0 ] in
  Alcotest.(check bool) "reached red" true (final2 <> tl.Stg.reset);
  Alcotest.(check int) "green output first" 0b001 (List.hd outs);
  let mc = Stg.memory_controller () in
  Stg.validate mc;
  Alcotest.(check int) "memctrl states" 5 mc.Stg.num_states;
  (* read request: IDLE -> READ -> WAIT -> DONE -> IDLE with done=11 *)
  let final3, outs3 = Stg.simulate mc [ 1; 0; 0; 0 ] in
  Alcotest.(check int) "back to idle" mc.Stg.reset final3;
  Alcotest.(check int) "done pulse" 0b11 (List.nth outs3 3)

let test_zoo_extended_all_valid () =
  List.iter
    (fun stg ->
      Stg.validate stg;
      let dist = Markov.analyze stg in
      let total = Array.fold_left ( +. ) 0.0 dist.Markov.state_prob in
      Alcotest.(check (float 1e-6)) (stg.Stg.name ^ " probs sum") 1.0 total)
    (Stg.zoo_extended ())

(* --- symbolic analysis --- *)

let test_symbolic_reachability_matches_explicit () =
  List.iter
    (fun stg ->
      let sym = Symbolic.build stg in
      let symbolic = Symbolic.reachable_states sym in
      let explicit = Stg.reachable stg in
      Alcotest.(check bool)
        (stg.Stg.name ^ " symbolic = explicit reachability")
        true
        (symbolic = explicit))
    (Stg.zoo_extended ())

let test_symbolic_count_reachable () =
  (* a counter reaches all 2^bits states; a machine with unreachable states
     must not count them *)
  let stg = Stg.counter_fsm ~bits:3 in
  let sym = Symbolic.build stg in
  Alcotest.(check int) "counter reaches all" 8 (Symbolic.count_reachable sym);
  let partial =
    Stg.create ~name:"island" ~input_bits:1 ~output_bits:1 ~num_states:4
      ~next:(fun s i -> if s <= 1 then (s + i) mod 2 else 3)
      ~output:(fun s _ -> s mod 2)
      ()
  in
  let sym2 = Symbolic.build partial in
  Alcotest.(check int) "island states excluded" 2 (Symbolic.count_reachable sym2)

let test_symbolic_image_step () =
  (* one image step from reset of an always-enabled counter = {0, 1} since
     input 0 self-loops and input 1 advances *)
  let stg = Stg.counter_fsm ~bits:2 in
  let sym = Symbolic.build stg in
  let one_step = Symbolic.image sym (Symbolic.state_cube sym stg.Stg.reset) in
  let members =
    List.filter
      (fun s ->
        not (Hlp_bdd.Bdd.is_zero
               (Hlp_bdd.Bdd.and_ sym.Symbolic.man one_step (Symbolic.state_cube sym s))))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "image of reset" [ 0; 1 ] members

let test_symbolic_self_loops () =
  (* reactive 6+2: only the first wait state is ever entered (the deeper
     waits are unreachable — the symbolic analysis exposes this), so the
     reachable set is {wait0, burst0, burst1} and exactly one of its six
     (state, input) pairs self-loops *)
  let stg = Stg.reactive ~wait_states:6 ~burst_states:2 in
  let sym = Symbolic.build stg in
  Alcotest.(check int) "three reachable states" 3 (Symbolic.count_reachable sym);
  let p = Symbolic.self_loop_probability sym in
  Alcotest.(check (float 0.001)) "exactly 1/6" (1.0 /. 6.0) p;
  (* the counter with enable has self-loop probability 1/2 exactly *)
  let c = Symbolic.build (Stg.counter_fsm ~bits:3) in
  Alcotest.(check (float 1e-9)) "counter self-loops" 0.5
    (Symbolic.self_loop_probability c)

let test_bdd_rename () =
  let m = Hlp_bdd.Bdd.manager () in
  let f = Hlp_bdd.Bdd.and_ m (Hlp_bdd.Bdd.var m 1) (Hlp_bdd.Bdd.var m 3) in
  let g = Hlp_bdd.Bdd.rename m (fun v -> v - 1) f in
  let expect = Hlp_bdd.Bdd.and_ m (Hlp_bdd.Bdd.var m 0) (Hlp_bdd.Bdd.var m 2) in
  Alcotest.(check bool) "renamed" true (Hlp_bdd.Bdd.equal g expect)

let test_error_paths () =
  (* malformed KISS *)
  Alcotest.(check bool) "missing .i/.o rejected" true
    (try ignore (Stg.of_kiss "00 a b 1\n"); false with Failure _ -> true);
  Alcotest.(check bool) "garbage line rejected" true
    (try ignore (Stg.of_kiss ".i 1\n.o 1\nnot a kiss line at all here\n"); false
     with Failure _ -> true);
  (* invalid machine tables *)
  let bad = Stg.counter_fsm ~bits:2 in
  let broken = { bad with Stg.reset = 99 } in
  Alcotest.(check bool) "bad reset rejected" true
    (try Stg.validate broken; false with Failure _ -> true)

let qcheck_anneal_injective =
  QCheck.Test.make ~name:"annealed encodings stay injective" ~count:20
    QCheck.(int_range 3 20)
    (fun states ->
      let rng = Hlp_util.Prng.create states in
      let stg = Stg.random_fsm rng ~states ~input_bits:1 ~output_bits:1 in
      let dist = Markov.analyze stg in
      let enc = Encode.anneal ~iterations:500 rng stg dist in
      Encode.is_injective enc)

let qcheck_minimize_preserves_behaviour =
  QCheck.Test.make ~name:"minimization preserves io behaviour" ~count:20
    QCheck.(pair (int_range 2 12) (int_bound 1000))
    (fun (states, seed) ->
      let rng = Hlp_util.Prng.create seed in
      let stg = Stg.random_fsm rng ~states ~input_bits:1 ~output_bits:1 in
      let minimized, _ = Minimize.minimize stg in
      let seq = List.init 100 (fun _ -> Hlp_util.Prng.int rng 2) in
      let _, o1 = Stg.simulate stg seq and _, o2 = Stg.simulate minimized seq in
      o1 = o2)

let suite =
  [
    Alcotest.test_case "counter fsm" `Quick test_counter_fsm_behaviour;
    Alcotest.test_case "sequence detector" `Quick test_sequence_detector;
    Alcotest.test_case "reactive idles" `Quick test_reactive_idles;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "kiss roundtrip" `Quick test_kiss_roundtrip;
    Alcotest.test_case "kiss don't care" `Quick test_kiss_dont_care;
    Alcotest.test_case "markov counter uniform" `Quick test_markov_counter_uniform;
    Alcotest.test_case "markov sums" `Quick test_markov_probabilities_sum;
    Alcotest.test_case "markov input bias" `Quick test_markov_input_bias;
    Alcotest.test_case "expected hamming counter" `Quick test_expected_hamming_counter;
    Alcotest.test_case "one-hot two flips" `Quick test_one_hot_two_flips;
    Alcotest.test_case "encodings injective" `Quick test_encodings_injective;
    Alcotest.test_case "anneal improves" `Quick test_anneal_improves;
    Alcotest.test_case "reencode improves" `Quick test_reencode_improves;
    Alcotest.test_case "synth counter" `Quick test_synth_counter_behaviour;
    Alcotest.test_case "synth matches stg" `Quick test_synth_matches_stg_randomly;
    Alcotest.test_case "synth one-hot" `Quick test_synth_one_hot_matches_too;
    Alcotest.test_case "minimize redundant" `Quick test_minimize_redundant_machine;
    Alcotest.test_case "minimize irreducible" `Quick test_minimize_irreducible;
    Alcotest.test_case "tyagi bound holds" `Quick test_tyagi_bound_holds;
    Alcotest.test_case "kiss benchmark controllers" `Quick test_kiss_benchmark_controllers;
    Alcotest.test_case "zoo extended valid" `Quick test_zoo_extended_all_valid;
    Alcotest.test_case "symbolic reachability" `Quick test_symbolic_reachability_matches_explicit;
    Alcotest.test_case "symbolic count" `Quick test_symbolic_count_reachable;
    Alcotest.test_case "symbolic image" `Quick test_symbolic_image_step;
    Alcotest.test_case "symbolic self loops" `Quick test_symbolic_self_loops;
    Alcotest.test_case "bdd rename" `Quick test_bdd_rename;
    Alcotest.test_case "error paths" `Quick test_error_paths;
    QCheck_alcotest.to_alcotest qcheck_anneal_injective;
    QCheck_alcotest.to_alcotest qcheck_minimize_preserves_behaviour;
  ]
