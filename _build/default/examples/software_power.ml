(* Software-level power (Section II-A + III-A end to end): run an
   application on the RISC machine, fit and apply the Tiwari
   instruction-level model, synthesize a short profile-matched program, and
   cold-schedule the code for a cooler instruction bus.

   Run with: dune exec examples/software_power.exe *)

open Hlp_isa

let () =
  let prog, mem = Programs.matmul ~n:12 in
  let r = Machine.run ~mem_init:mem prog in
  let c = r.Machine.counters in
  Printf.printf "matmul n=12 on the hlp_isa machine:\n";
  Printf.printf "  %d instructions, %d cycles, energy %.0f (%.2f/cycle)\n"
    c.Machine.instructions c.Machine.cycles r.Machine.energy
    (Machine.energy_per_cycle r);
  Printf.printf "  i$ misses %d, d$ misses %d, stalls %d, flushes %d\n\n"
    c.Machine.icache_misses c.Machine.dcache_misses c.Machine.load_use_stalls
    c.Machine.branch_flushes;

  (* Tiwari model fitted on the other applications *)
  let others = List.filter (fun (n, _) -> n <> "matmul") (Programs.all ()) in
  let model = Tiwari.fit (List.map snd others) in
  let predicted = Tiwari.predict model c in
  Printf.printf "Tiwari instruction-level prediction: %.0f (%.1f%% error)\n"
    predicted
    (100.0 *. Hlp_util.Stats.relative_error ~actual:r.Machine.energy ~estimate:predicted);
  List.iter
    (fun (name, v) -> if v > 0.01 then Printf.printf "    %-14s %8.2f\n" name v)
    (Tiwari.coefficients model);
  print_newline ();

  (* profile-driven program synthesis *)
  let v = Profile.validate r () in
  Printf.printf
    "Hsieh profile-driven synthesis: %d -> %d instructions (%.0fx shorter),\n\
    \  power per cycle within %.1f%% of the original trace\n\n"
    v.Profile.original.Profile.instructions v.Profile.synthetic.Profile.instructions
    v.Profile.trace_reduction
    (100.0 *. v.Profile.energy_error);

  (* cold scheduling *)
  Printf.printf "Cold scheduling (Su et al.):\n";
  List.iter
    (fun (name, (p, m)) ->
      let e = Coldsched.measure ~mem_init:m p in
      Printf.printf "  %-14s ibus %.2f -> %.2f toggles/instr (%.1f%% saving)\n" name
        e.Coldsched.original_toggles e.Coldsched.scheduled_toggles
        (100.0 *. e.Coldsched.saving))
    [ ("vector_kernel", Programs.vector_kernel ~n:128); ("fir", Programs.fir ~taps:8 ~samples:256) ];

  (* Fig. 2 *)
  let rm = Machine.run ~mem_init:(snd (Programs.fig2_memory ~n:256)) (fst (Programs.fig2_memory ~n:256)) in
  let rr = Machine.run ~mem_init:(snd (Programs.fig2_register ~n:256)) (fst (Programs.fig2_register ~n:256)) in
  assert (rm.Machine.regs.(7) = rr.Machine.regs.(7));
  Printf.printf
    "\nFig. 2 memory-access minimization: %.0f -> %.0f energy (same result), %d -> %d accesses\n"
    rm.Machine.energy rr.Machine.energy
    (rm.Machine.counters.Machine.mem_reads + rm.Machine.counters.Machine.mem_writes)
    (rr.Machine.counters.Machine.mem_reads + rr.Machine.counters.Machine.mem_writes)
