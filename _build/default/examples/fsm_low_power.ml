(* Low-power state encoding and clock gating for controllers
   (Sections III-H and III-I): encode a machine four ways, compare the
   switching proxy and the actual synthesized switched capacitance, then
   gate the clock of a mostly-idle reactive controller.

   Run with: dune exec examples/fsm_low_power.exe *)

open Hlp_fsm

let () =
  let stg = Stg.random_fsm (Hlp_util.Prng.create 11) ~states:12 ~input_bits:2 ~output_bits:3 in
  let dist = Markov.analyze stg in
  Printf.printf "Machine '%s': %d states, %d transitions, H(p_ij)=%.2f bits\n\n"
    stg.Stg.name stg.Stg.num_states (Stg.transition_count stg)
    (Markov.transition_entropy dist);
  let rng = Hlp_util.Prng.create 5 in
  let encodings =
    [
      ("natural", Encode.natural stg);
      ("gray", Encode.gray stg);
      ("one-hot", Encode.one_hot stg);
      ("annealed", Encode.anneal ~iterations:20_000 rng stg dist);
    ]
  in
  Printf.printf "%-10s %18s %22s\n" "encoding" "E[Hamming]/cycle" "synthesized cap/cycle";
  List.iter
    (fun (name, enc) ->
      let proxy = Encode.cost stg dist enc in
      let cap = Synth.switched_capacitance_per_cycle ~encoding:enc stg in
      Printf.printf "%-10s %18.3f %22.1f\n" name proxy cap)
    encodings;
  (* Tyagi's bound holds for every encoding *)
  let r = Tyagi.report stg dist in
  Printf.printf "\nTyagi lower bound on E[Hamming]: %.3f (sparse machine: %b)\n"
    r.Tyagi.lower_bound r.Tyagi.sparse;

  (* clock gating on a reactive controller *)
  let reactive = Stg.reactive ~wait_states:6 ~burst_states:4 in
  Printf.printf "\nClock gating a reactive controller (requests arrive 3%% of cycles):\n";
  let ev = Hlp_optlogic.Gated_clock.evaluate ~input_one_prob:0.03 reactive in
  Printf.printf "  idle (gated) fraction: %.1f%%\n" (100.0 *. ev.Hlp_optlogic.Gated_clock.idle_fraction);
  Printf.printf "  capacitance: %.1f -> %.1f per cycle (%.1f%% saving)\n"
    ev.Hlp_optlogic.Gated_clock.normal_cap ev.Hlp_optlogic.Gated_clock.gated_cap
    (100.0 *. ev.Hlp_optlogic.Gated_clock.saving)
