(* Quickstart: estimate the power of an RT-level module three ways.

   We build an 8x8 multiplier, drive it with correlated data, and compare:
   1. the gate-level reference (switched-capacitance simulation);
   2. an entropy-based behavioral estimate (no simulation of the internals);
   3. a fitted input-output macro-model (the Section II-C workhorse).

   Run with: dune exec examples/quickstart.exe *)

let () =
  let width = 8 in
  let net = Hlp_logic.Generators.multiplier_circuit width in
  Printf.printf "Module: %s\n\n" (Hlp_logic.Netlist.stats_string net);

  (* a data stream with realistic temporal correlation *)
  let rng = Hlp_util.Prng.create 2026 in
  let n = 3000 in
  let a = Hlp_sim.Streams.gaussian_walk rng ~width ~sigma:20.0 ~n in
  let b = Hlp_sim.Streams.uniform rng ~width ~n in

  (* 1. gate-level reference *)
  let sim = Hlp_sim.Funcsim.create net in
  Hlp_sim.Funcsim.run sim (Hlp_sim.Streams.pack_fn ~widths:[ width; width ] [ a; b ]) n;
  let reference = Hlp_sim.Funcsim.switched_capacitance sim /. float_of_int n in
  Printf.printf "gate-level reference:  %8.1f cap units/cycle\n" reference;

  (* 2. entropy model: boundary statistics + C_tot only *)
  let packed =
    Array.init n (fun i ->
        a.(i) lor (b.(i) lsl width))
  in
  let est =
    Hlp_power.Entropy.estimate_netlist ~model:Hlp_power.Entropy.Marculescu net
      ~input_trace:packed
  in
  let entropy_cap = est.Hlp_power.Entropy.c_tot *. est.Hlp_power.Entropy.e_avg in
  Printf.printf "entropy estimate:      %8.1f cap units/cycle (h_in=%.2f h_out=%.2f)\n"
    entropy_cap est.Hlp_power.Entropy.h_in est.Hlp_power.Entropy.h_out;

  (* 3. macro-model: characterize once, then predict from statistics *)
  let dut = { Hlp_power.Macromodel.net; widths = [ width; width ] } in
  let observations =
    List.map (Hlp_power.Macromodel.observe dut) (Hlp_power.Macromodel.training_streams dut)
  in
  let model = Hlp_power.Macromodel.fit Hlp_power.Macromodel.Input_output dut observations in
  let test_obs = Hlp_power.Macromodel.observe dut [ a; b ] in
  let predicted = Hlp_power.Macromodel.predict model test_obs.Hlp_power.Macromodel.stats in
  Printf.printf "io macro-model:        %8.1f cap units/cycle (%.1f%% error)\n" predicted
    (100.0 *. Hlp_util.Stats.relative_error ~actual:reference ~estimate:predicted);

  Printf.printf "\nAverage power at Vdd=5V, f=20MHz: %.2e (energy units/s)\n"
    (Hlp_power.Entropy.power ~c_tot:reference ~e_avg:1.0 ~vdd:5.0 ~freq:20e6)
