(* The Table I experiment as an application: take an 11-tap FIR filter,
   convert its coefficient multiplications into shift-add networks, and
   show where the switched capacitance goes — by component category, before
   and after, like the paper's capacitance statistics table.

   Run with: dune exec examples/fir_filter.exe *)

let report label design =
  let table = Hlp_rtl.Fir.measure ~cycles:300 design in
  Printf.printf "%s (total %.1f cap units/cycle)\n" label table.Hlp_rtl.Fir.total;
  List.iter
    (fun r ->
      Printf.printf "  %-18s %10.1f  %5.1f%%\n"
        (Hlp_rtl.Fir.category_name r.Hlp_rtl.Fir.category)
        r.Hlp_rtl.Fir.switched
        (100.0 *. r.Hlp_rtl.Fir.share))
    table.Hlp_rtl.Fir.rows;
  table.Hlp_rtl.Fir.total

let () =
  let width = 12 in
  Printf.printf "11-tap FIR filter, %d-bit samples\n\n" width;
  let before = Hlp_rtl.Fir.build ~width ~constant_mult:false () in
  let after = Hlp_rtl.Fir.build ~width ~constant_mult:true () in
  Printf.printf "before: %s\nafter:  %s\n\n"
    (Hlp_logic.Netlist.stats_string before.Hlp_rtl.Fir.net)
    (Hlp_logic.Netlist.stats_string after.Hlp_rtl.Fir.net);
  (* both datapaths must compute the same filter *)
  let rng = Hlp_util.Prng.create 99 in
  let trace = Hlp_sim.Streams.uniform rng ~width ~n:50 in
  let expect = Hlp_rtl.Fir.output_reference before trace in
  List.iter
    (fun d ->
      let sim = Hlp_sim.Funcsim.create d.Hlp_rtl.Fir.net in
      Array.iteri
        (fun k x ->
          Hlp_sim.Funcsim.step sim (Array.init width (fun i -> Hlp_util.Bits.bit x i));
          assert (Hlp_sim.Funcsim.output_word sim ~prefix:"y" = expect.(k)))
        trace)
    [ before; after ];
  Printf.printf "functional check: both datapaths bit-exact on %d samples\n\n"
    (Array.length trace);
  let t_before = report "Before constant-multiplication conversion" before in
  print_newline ();
  let t_after = report "After conversion to shift-adds" after in
  Printf.printf "\nTotal capacitance reduction: %.2fx\n" (t_before /. t_after)
