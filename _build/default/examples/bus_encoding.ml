(* Bus encoding on three stream classes (Section III-G): sequential
   instruction addresses, interleaved array accesses, and random data. Each
   code wins exactly where the paper says it should.

   Run with: dune exec examples/bus_encoding.exe *)

open Hlp_bus

let schemes beach =
  [ Encoding.Binary; Encoding.Gray_code; Encoding.Bus_invert; Encoding.T0;
    Encoding.T0_bus_invert; Encoding.Working_zone { zones = 4; offset_bits = 4 };
    beach ]

let show title ~width stream beach =
  Printf.printf "%s (%d words, %d-bit bus)\n" title (Array.length stream) width;
  List.iter
    (fun s ->
      let r = Encoding.evaluate s ~width stream in
      assert (Encoding.roundtrip s ~width stream);
      Printf.printf "  %-14s %6.3f transitions/word  (%d lines)\n"
        (Encoding.scheme_name s) r.Encoding.per_word r.Encoding.lines)
    (schemes beach);
  print_newline ()

let () =
  let width = 16 in
  let rng = Hlp_util.Prng.create 7 in
  let train = Traces.loop_kernel rng ~body:12 ~iterations:80 ~width in
  let beach = Encoding.train_beach ~width train in
  show "Sequential addresses (instruction fetch)" ~width
    (Traces.sequential () ~width ~n:4000) beach;
  show "Interleaved array walks (4 working zones)" ~width
    (Traces.interleaved_arrays rng ~bases:[ 0x0100; 0x4200; 0x8000; 0xC000 ]
       ~stride:1 ~width ~n:4000)
    beach;
  show "Embedded loop kernel (Beach's home turf)" ~width
    (Traces.loop_kernel rng ~body:12 ~iterations:80 ~width)
    beach;
  show "Random data (Bus-Invert's home turf)" ~width
    (Traces.random_data rng ~width ~n:4000) beach
