(* System-level power management (Section III-B): an event-driven device
   under a realistic session workload, managed by the surveyed policies.

   Run with: dune exec examples/predictive_shutdown.exe *)

open Hlp_pm

let () =
  let device = Policy.default_device in
  let rng = Hlp_util.Prng.create 42 in
  let sessions = Policy.workload ~sessions:20_000 rng in
  let ta = Array.fold_left (fun acc s -> acc +. s.Policy.active) 0.0 sessions in
  let ti = Array.fold_left (fun acc s -> acc +. s.Policy.idle) 0.0 sessions in
  Printf.printf
    "Device: p_active=%.1f p_idle=%.1f p_off=%.2f t_wakeup=%.1f (breakeven %.1f)\n"
    device.Policy.p_active device.Policy.p_idle device.Policy.p_off
    device.Policy.t_wakeup (Policy.breakeven device);
  Printf.printf "Workload: %d sessions, idle/active time ratio %.1f\n\n"
    (Array.length sessions) (ti /. ta);
  Printf.printf "%-24s %14s %12s %10s\n" "policy" "improvement" "delay" "shutdowns";
  List.iter
    (fun p ->
      let s = Policy.simulate device p sessions in
      Printf.printf "%-24s %12.2fx %11.2f%% %10d\n" (Policy.policy_name p)
        s.Policy.improvement
        (100.0 *. s.Policy.delay_penalty)
        s.Policy.shutdowns)
    [
      Policy.Always_on;
      Policy.Timeout 20.0;
      Policy.Timeout 5.0;
      Policy.Threshold 1.0;
      Policy.Regression;
      Policy.Exp_average { alpha = 0.3; prewake = false };
      Policy.Exp_average { alpha = 0.3; prewake = true };
      Policy.Oracle;
    ];
  Printf.printf "\nThe oracle is the clairvoyant bound; predictive policies approach\n";
  Printf.printf "it without the static timeout's pre-shutdown idle waste.\n"
