examples/fir_filter.ml: Array Hlp_logic Hlp_rtl Hlp_sim Hlp_util List Printf
