examples/predictive_shutdown.mli:
