examples/quickstart.mli:
