examples/fsm_low_power.mli:
