examples/quickstart.ml: Array Hlp_logic Hlp_power Hlp_sim Hlp_util List Printf
