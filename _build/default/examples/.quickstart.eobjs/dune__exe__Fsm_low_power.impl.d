examples/fsm_low_power.ml: Encode Hlp_fsm Hlp_optlogic Hlp_util List Markov Printf Stg Synth Tyagi
