examples/bus_encoding.mli:
