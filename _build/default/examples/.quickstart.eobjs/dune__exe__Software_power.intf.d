examples/software_power.mli:
