examples/predictive_shutdown.ml: Array Hlp_pm Hlp_util List Policy Printf
