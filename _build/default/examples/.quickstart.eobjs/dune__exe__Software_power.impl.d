examples/software_power.ml: Array Coldsched Hlp_isa Hlp_util List Machine Printf Profile Programs Tiwari
