examples/bus_encoding.ml: Array Encoding Hlp_bus Hlp_util List Printf Traces
