open Hlp_util

(* Crash-safe durability: the WAL journal's framing and recovery, the
   checkpoint/resume byte-identity contract of Probprop.monte_carlo, the
   supervised batch runner with its breaker and load shedding, and the
   sampling replay cache. The property under test throughout: kill the
   process anywhere — SIGKILL, torn tail, truncation at an arbitrary byte
   offset — and the resumed run produces the byte-identical estimate an
   uninterrupted run would have, or a fresh run if the journal is
   unusable. Never a wrong number, never a wedge. *)

module P = Hlp_power.Probprop

(* same discipline as test_robustness: leave the global registry off *)
let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

let temp name = Filename.temp_file ("hlp_durability_" ^ name) ".journal"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let bits = Int64.bits_of_float

(* byte-identity of two Monte Carlo results: estimate, trajectory, cycles *)
let check_mc_identical what (a : P.monte_carlo) (b : P.monte_carlo) =
  Alcotest.(check int64) (what ^ ": estimate bits") (bits a.estimate)
    (bits b.estimate);
  Alcotest.(check int64) (what ^ ": half-interval bits") (bits a.half_interval)
    (bits b.half_interval);
  Alcotest.(check int) (what ^ ": cycles") a.cycles_used b.cycles_used;
  Alcotest.(check int) (what ^ ": batches") a.batches b.batches;
  Alcotest.(check (list int64))
    (what ^ ": batch means bits")
    (Array.to_list (Array.map bits a.batch_means))
    (Array.to_list (Array.map bits b.batch_means))

(* --- Journal: framing, recovery, atomic snapshots --- *)

let test_journal_roundtrip () =
  let path = temp "roundtrip" in
  let records =
    [ "alpha"; ""; String.make 1000 '\x00'; "tail\nwith\nnewlines \xff" ]
  in
  let j, recovered = Journal.open_ path in
  Alcotest.(check (list string)) "fresh open is empty" [] recovered;
  List.iter (Journal.append j) records;
  Alcotest.(check int) "appended count" (List.length records) (Journal.appended j);
  Journal.close j;
  Journal.close j;
  (* idempotent *)
  let r = Journal.recover path in
  Alcotest.(check (list string)) "roundtrip" records r.Journal.records;
  Alcotest.(check int) "no torn bytes" 0 r.Journal.torn_bytes;
  (* resume keeps the records and appends after them *)
  let j2, recovered2 = Journal.open_ ~resume:true path in
  Alcotest.(check (list string)) "resume recovers" records recovered2;
  Journal.append j2 "five";
  Journal.close j2;
  Alcotest.(check (list string))
    "append after resume"
    (records @ [ "five" ])
    (Journal.recover path).Journal.records;
  (* resume:false truncates *)
  let j3, recovered3 = Journal.open_ path in
  Alcotest.(check (list string)) "truncating open" [] recovered3;
  Journal.close j3;
  Alcotest.(check int) "file emptied" 0
    (Journal.recover path).Journal.valid_bytes;
  Sys.remove path

let test_journal_missing_file () =
  let path = temp "missing" in
  Sys.remove path;
  let r = Journal.recover path in
  Alcotest.(check (list string)) "missing file: no records" [] r.Journal.records;
  Alcotest.(check int) "missing file: no bytes" 0 r.Journal.valid_bytes

let test_journal_crc_corruption () =
  let path = temp "crc" in
  let j, _ = Journal.open_ path in
  List.iter (Journal.append j) [ "first"; "second"; "third" ];
  Journal.close j;
  let raw = Bytes.of_string (read_file path) in
  (* flip a payload byte inside the second record: 8-byte frame + "first",
     8-byte frame, then payload *)
  let off = 8 + 5 + 8 + 2 in
  Bytes.set raw off (Char.chr (Char.code (Bytes.get raw off) lxor 0x40));
  write_file path (Bytes.to_string raw);
  let r = Journal.recover path in
  Alcotest.(check (list string))
    "corruption drops the record and everything after" [ "first" ]
    r.Journal.records;
  Alcotest.(check bool) "torn tail reported" true (r.Journal.torn_bytes > 0);
  Sys.remove path

(* the WAL recovery rule as a property: cut the file at ANY byte offset and
   recovery succeeds, yielding exactly a prefix of the appended records *)
let qcheck_recover_any_truncation =
  QCheck.Test.make
    ~name:"journal recovery yields a record prefix at any cut offset" ~count:50
    QCheck.(pair (int_bound 100_000) (int_bound 1_000_000))
    (fun (seed, cut_sel) ->
      let rng = Prng.create seed in
      let nrec = 1 + Prng.int rng 6 in
      let records =
        List.init nrec (fun _ ->
            String.init (Prng.int rng 40) (fun _ ->
                Char.chr (Prng.int rng 256)))
      in
      let path = temp "qcheck_cut" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      let j, _ = Journal.open_ path in
      List.iter (Journal.append j) records;
      Journal.close j;
      let raw = read_file path in
      let cut = cut_sel mod (String.length raw + 1) in
      write_file path (String.sub raw 0 cut);
      let r = Journal.recover path in
      let rec is_prefix got want =
        match (got, want) with
        | [], _ -> true
        | g :: gs, w :: ws -> g = w && is_prefix gs ws
        | _ :: _, [] -> false
      in
      is_prefix r.Journal.records records
      && r.Journal.valid_bytes + r.Journal.torn_bytes = cut
      && (cut < String.length raw || List.length r.Journal.records = nrec))

let test_write_atomic () =
  let path = temp "atomic" in
  Journal.write_atomic ~path "first contents\n";
  Alcotest.(check string) "written" "first contents\n" (read_file path);
  Journal.write_atomic ~path "second, replacing the first atomically\n";
  Alcotest.(check string) "replaced" "second, replacing the first atomically\n"
    (read_file path);
  (* no stray temp files left beside the target *)
  let dir = Filename.dirname path and base = Filename.basename path in
  let strays =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> f <> base && String.length f > String.length base
                             && String.sub f 0 (String.length base) = base)
  in
  Alcotest.(check (list string)) "no temp droppings" [] strays;
  Sys.remove path

(* --- Probprop checkpoint/resume: the byte-identity contract --- *)

exception Crash

(* fixed-budget scalar workload: ~20 batches, deterministic and fast *)
let scalar_mc ?checkpoint () =
  P.monte_carlo ~batch:30 ~relative_precision:0.001 ~max_cycles:600 ~seed:31
    ~engine:Hlp_sim.Engine.Scalar ?checkpoint
    (Hlp_logic.Generators.multiplier_circuit 4)

let test_scalar_checkpoint_passive () =
  (* journaling on, never interrupted: must not perturb the estimate *)
  let path = temp "scalar_passive" in
  let plain = scalar_mc () in
  let journaled = scalar_mc ~checkpoint:(P.checkpoint path) () in
  check_mc_identical "journaled vs plain" plain journaled;
  (* resuming from the completed journal replays to the same answer
     without simulating anything new *)
  let resumed = scalar_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
  check_mc_identical "resume after completion" plain resumed;
  Sys.remove path

let interrupt_scalar path ~at =
  let count = ref 0 in
  let ck =
    P.checkpoint ~on_batch:(fun _ ->
        incr count;
        if !count = at then raise Crash)
      path
  in
  match scalar_mc ~checkpoint:ck () with
  | _ -> Alcotest.fail "expected the interruption to fire"
  | exception Crash -> ()

let test_scalar_resume_after_interrupt () =
  let plain = scalar_mc () in
  List.iter
    (fun at ->
      let path = temp "scalar_interrupt" in
      interrupt_scalar path ~at;
      let resumed = scalar_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
      check_mc_identical (Printf.sprintf "interrupted at batch %d" at) plain
        resumed;
      Sys.remove path)
    [ 1; 5; 12 ]

let test_scalar_resume_every_n () =
  (* sparser records (every 3 batches) resume just as exactly *)
  let plain = scalar_mc () in
  let path = temp "scalar_every" in
  let count = ref 0 in
  let ck =
    P.checkpoint ~every:3
      ~on_batch:(fun _ ->
        incr count;
        if !count = 3 then raise Crash)
      path
  in
  (match scalar_mc ~checkpoint:ck () with
  | _ -> Alcotest.fail "expected the interruption to fire"
  | exception Crash -> ());
  let resumed =
    scalar_mc ~checkpoint:(P.checkpoint ~every:3 ~resume:true path) ()
  in
  check_mc_identical "every=3 resume" plain resumed;
  Sys.remove path

(* truncate the journal at ANY byte offset: the resumed run still produces
   the byte-identical estimate — a cut mid-record just resumes from the
   previous record (or starts fresh if the cut lands in the header) *)
let qcheck_scalar_resume_any_truncation =
  let full_journal =
    lazy
      (let path = temp "scalar_cut_src" in
       ignore (scalar_mc ~checkpoint:(P.checkpoint path) ());
       let raw = read_file path in
       Sys.remove path;
       raw)
  in
  QCheck.Test.make
    ~name:"scalar resume is byte-identical after truncation at any offset"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun cut_sel ->
      let raw = Lazy.force full_journal in
      let plain = scalar_mc () in
      let cut = cut_sel mod (String.length raw + 1) in
      let path = temp "scalar_cut" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      write_file path (String.sub raw 0 cut);
      let resumed = scalar_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
      bits resumed.P.estimate = bits plain.P.estimate
      && resumed.P.cycles_used = plain.P.cycles_used
      && resumed.P.batch_means = plain.P.batch_means)

let test_scalar_header_mismatch_self_heals () =
  with_telemetry @@ fun () ->
  let path = temp "scalar_header" in
  interrupt_scalar path ~at:4;
  (* resume under different parameters: the journal must self-heal into a
     fresh run, not wedge and not resume foreign state *)
  let fresh =
    P.monte_carlo ~batch:30 ~relative_precision:0.001 ~max_cycles:600 ~seed:99
      ~engine:Hlp_sim.Engine.Scalar
      (Hlp_logic.Generators.multiplier_circuit 4)
  in
  let healed =
    P.monte_carlo ~batch:30 ~relative_precision:0.001 ~max_cycles:600 ~seed:99
      ~engine:Hlp_sim.Engine.Scalar
      ~checkpoint:(P.checkpoint ~resume:true path)
      (Hlp_logic.Generators.multiplier_circuit 4)
  in
  check_mc_identical "healed journal = fresh run" fresh healed;
  Alcotest.(check bool) "mismatch counted" true
    (Telemetry.count (Telemetry.counter "probprop.ck_header_mismatches") >= 1);
  Sys.remove path

let test_checkpoint_validation () =
  Alcotest.check_raises "every = 0 rejected"
    (Err.Error
       (Err.Invalid_input
          { what = "Probprop.checkpoint: every"; why = "must be >= 1" }))
    (fun () -> ignore (P.checkpoint ~every:0 "x"));
  (* sequential netlists cannot be restored from one input vector *)
  let b = Hlp_logic.Netlist.Builder.create () in
  ignore
    (Hlp_logic.Netlist.Builder.dff_feedback b (fun q ->
         Hlp_logic.Netlist.Builder.not_ b q));
  let seq = Hlp_logic.Netlist.Builder.finish b in
  let path = temp "seq" in
  (match
     P.monte_carlo ~engine:Hlp_sim.Engine.Scalar ~max_cycles:60
       ~checkpoint:(P.checkpoint path) seq
   with
  | _ -> Alcotest.fail "expected Invalid_input for sequential checkpoint"
  | exception Err.Error (Err.Invalid_input _) -> ());
  Sys.remove path

(* fixed-budget bit-parallel workload: 10 units of batch * 63 cycles *)
let units_mc ?(engine = Hlp_sim.Engine.Bitparallel) ?checkpoint () =
  P.monte_carlo ~batch:4 ~relative_precision:1e-6 ~max_cycles:(10 * 4 * 63)
    ~seed:31 ~engine ~jobs:2 ?checkpoint
    (Hlp_logic.Generators.multiplier_circuit 4)

let test_units_resume_after_interrupt () =
  let plain = units_mc () in
  List.iter
    (fun at ->
      let path = temp "units_interrupt" in
      let count = ref 0 in
      let ck =
        P.checkpoint ~on_batch:(fun _ ->
            incr count;
            if !count = at then raise Crash)
          path
      in
      (match units_mc ~checkpoint:ck () with
      | _ -> Alcotest.fail "expected the interruption to fire"
      | exception Crash -> ());
      let resumed = units_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
      check_mc_identical (Printf.sprintf "units interrupted at %d" at) plain
        resumed;
      Sys.remove path)
    [ 1; 4; 9 ];
  (* resume from a completed journal: same answer again *)
  let path = temp "units_complete" in
  ignore (units_mc ~checkpoint:(P.checkpoint path) ());
  let resumed = units_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
  check_mc_identical "units resume after completion" plain resumed;
  Sys.remove path

let test_parallel_resume_after_interrupt () =
  let engine = Hlp_sim.Engine.Parallel in
  let plain = units_mc ~engine () in
  let path = temp "parallel_interrupt" in
  let count = ref 0 in
  let ck =
    P.checkpoint ~on_batch:(fun _ ->
        incr count;
        if !count = 3 then raise Crash)
      path
  in
  (match units_mc ~engine ~checkpoint:ck () with
  | _ -> Alcotest.fail "expected the interruption to fire"
  | exception Crash -> ());
  let resumed =
    units_mc ~engine ~checkpoint:(P.checkpoint ~resume:true path) ()
  in
  check_mc_identical "parallel engine resume" plain resumed;
  Sys.remove path

(* --- the real thing: SIGKILL a child mid-run, resume in the parent ---

   OCaml 5 forbids [Unix.fork] once any domain has ever been spawned, and
   earlier suites use domains, so the child is a re-execution of this test
   binary in a special mode ({!run_child_if_requested}, dispatched from
   [test_main] before Alcotest starts) launched through [Sys.command]
   (C [system], which the runtime's fork guard does not apply to). The
   child checkpoints normally and SIGKILLs itself at an exact batch;
   on_batch fires after the journal fsync, so the kill lands on a durable
   record boundary — the torn-tail cuts are covered separately by the
   truncation property. *)

let child_kill_env = "HLP_DURABILITY_CHILD_KILL_AT"
let child_path_env = "HLP_DURABILITY_CHILD_JOURNAL"
let child_engine_env = "HLP_DURABILITY_CHILD_ENGINE"

let run_child_if_requested () =
  let nonempty v = match v with Some "" | None -> None | s -> s in
  match
    ( nonempty (Sys.getenv_opt child_kill_env),
      nonempty (Sys.getenv_opt child_path_env) )
  with
  | Some kill_at, Some path ->
      (* never fall through to Alcotest from child mode *)
      (try
         let kill_at = int_of_string kill_at in
         let ck =
           P.checkpoint ~sync_every:1
             ~on_batch:(fun k ->
               if k >= kill_at then Unix.kill (Unix.getpid ()) Sys.sigkill)
             path
         in
         (* the engine selects the checkpointing workload; the parent
            resumes the matching one (Test_kernel drives the compiled
            variant through the same child) *)
         (match nonempty (Sys.getenv_opt child_engine_env) with
         | Some "compiled" ->
             ignore (units_mc ~engine:Hlp_sim.Engine.Compiled ~checkpoint:ck ())
         | _ -> ignore (scalar_mc ~checkpoint:ck ()));
         exit 10 (* survived: the kill never fired *)
       with _ -> exit 11)
  | _ -> ()

(* Re-execute this binary as a checkpointing child that SIGKILLs itself at
   [kill_at]; returns the shell exit code (137 = killed). Shared with the
   compiled-kernel suite. *)
let sigkill_child ?(engine = "scalar") ~kill_at path =
  Unix.putenv child_kill_env (string_of_int kill_at);
  Unix.putenv child_path_env path;
  Unix.putenv child_engine_env engine;
  let code =
    Sys.command (Filename.quote Sys.executable_name ^ " >/dev/null 2>&1")
  in
  Unix.putenv child_kill_env "";
  Unix.putenv child_path_env "";
  Unix.putenv child_engine_env "";
  code

let test_sigkill_resume_byte_identical () =
  let plain = scalar_mc () in
  List.iter
    (fun kill_at ->
      let path = temp "sigkill" in
      let code = sigkill_child ~kill_at path in
      (* the shell reports a SIGKILLed child as 128 + 9 *)
      Alcotest.(check int)
        (Printf.sprintf "child killed by SIGKILL at batch %d" kill_at)
        137 code;
      let resumed = scalar_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
      check_mc_identical
        (Printf.sprintf "SIGKILL at batch %d" kill_at)
        plain resumed;
      Sys.remove path)
    [ 1; 7; 15 ]

(* --- Supervisor: pool, admission control, breaker, signals --- *)

let test_run_jobs_basic () =
  let jobs = Array.init 9 (fun i -> i) in
  let cur = Atomic.make 0 and peak = Atomic.make 0 in
  let f _i _g x =
    let c = Atomic.fetch_and_add cur 1 + 1 in
    let rec bump () =
      let p = Atomic.get peak in
      if c > p && not (Atomic.compare_and_set peak p c) then bump ()
    in
    bump ();
    Unix.sleepf 0.002;
    ignore (Atomic.fetch_and_add cur (-1));
    x * x
  in
  let results, stats = Supervisor.run_jobs ~max_inflight:2 f jobs in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v
      | Error e -> Alcotest.failf "slot %d failed: %s" i (Err.to_string e))
    results;
  Alcotest.(check int) "ran" 9 stats.Supervisor.ran;
  Alcotest.(check int) "ok" 9 stats.Supervisor.ok;
  Alcotest.(check int) "failed" 0 stats.Supervisor.failed;
  Alcotest.(check bool) "in-flight bounded" true (Atomic.get peak <= 2)

let test_run_jobs_contains_typed_errors () =
  let jobs = Array.init 6 (fun i -> i) in
  let f _i _g x =
    if x mod 2 = 1 then raise (Err.invalid_input ~what:"odd job" "boom");
    x
  in
  let results, stats = Supervisor.run_jobs ~max_inflight:3 f jobs in
  Array.iteri
    (fun i r ->
      match (i mod 2, r) with
      | 0, Ok v -> Alcotest.(check int) "even ok" i v
      | 1, Error (Err.Invalid_input _) -> ()
      | _ -> Alcotest.failf "slot %d has the wrong shape" i)
    results;
  Alcotest.(check int) "ok" 3 stats.Supervisor.ok;
  Alcotest.(check int) "failed" 3 stats.Supervisor.failed

let test_run_jobs_queue_shedding () =
  let jobs = Array.init 7 (fun i -> i) in
  let results, stats =
    Supervisor.run_jobs ~max_inflight:2 ~queue_budget:3 (fun _ _ x -> x) jobs
  in
  Array.iteri
    (fun i r ->
      match (r, i < 3) with
      | Ok v, true -> Alcotest.(check int) "admitted" i v
      | Error (Err.Overloaded { pending; _ }), false ->
          Alcotest.(check int) "overload records the demand" 7 pending
      | _ -> Alcotest.failf "slot %d has the wrong shape" i)
    results;
  Alcotest.(check int) "shed_queue" 4 stats.Supervisor.shed_queue;
  Alcotest.(check int) "ran" 3 stats.Supervisor.ran

let test_run_jobs_deadline_and_cancel_shedding () =
  (* a deadline that has already passed by the time any worker looks *)
  let results, stats =
    Supervisor.run_jobs ~max_inflight:2 ~deadline_s:1e-9
      (fun _ _ x -> x)
      (Array.init 5 (fun i -> i))
  in
  Array.iter
    (function
      | Error (Err.Deadline_exceeded _) -> ()
      | _ -> Alcotest.fail "expected every job shed on the dead deadline")
    results;
  Alcotest.(check int) "deadline sheds" 5 stats.Supervisor.shed_deadline;
  (* a token cancelled before the run starts *)
  let tok = Guard.token () in
  Guard.cancel tok;
  let results, stats =
    Supervisor.run_jobs ~max_inflight:2 ~token:tok
      (fun _ _ x -> x)
      (Array.init 4 (fun i -> i))
  in
  Array.iter
    (function
      | Error (Err.Cancelled _) -> ()
      | _ -> Alcotest.fail "expected every job shed on the cancelled token")
    results;
  Alcotest.(check int) "cancel sheds" 4 stats.Supervisor.shed_deadline;
  Alcotest.(check int) "nothing ran" 0 stats.Supervisor.ran

let test_run_jobs_contains_untyped_exceptions () =
  (* non-[Err.Error] exceptions used to escape [Err.protect], kill the
     worker domain without advancing [completed], and hang the runner's
     poll loop forever. Now they land in the slot as [Worker_failure]
     and the pool drains. *)
  let jobs = Array.init 6 (fun i -> i) in
  let f _i _g x = if x mod 2 = 1 then failwith "untyped boom" else x * 10 in
  let results, stats = Supervisor.run_jobs ~max_inflight:2 f jobs in
  Array.iteri
    (fun i r ->
      match (i mod 2, r) with
      | 0, Ok v -> Alcotest.(check int) "even ok" (i * 10) v
      | 1, Error (Err.Worker_failure { shard; why; _ }) ->
          Alcotest.(check int) "shard is the job index" i shard;
          Alcotest.(check bool) "why carries the exception" true
            (String.length why > 0)
      | _ -> Alcotest.failf "slot %d has the wrong shape" i)
    results;
  Alcotest.(check int) "failed" 3 stats.Supervisor.failed;
  Alcotest.(check int) "ok" 3 stats.Supervisor.ok

let test_run_jobs_contains_raising_tracer () =
  (* with tracing enabled, a span args thunk that raises fires inside the
     worker's span machinery — outside the old [Err.protect] scope. The
     pool must still drain and give that job a typed slot. *)
  Trace.enable ();
  Fun.protect ~finally:(fun () -> Trace.disable ()) @@ fun () ->
  let jobs = Array.init 4 (fun i -> i) in
  let f _i _g x =
    Trace.span
      ~args:(fun () -> if x = 2 then failwith "tracer boom" else [])
      "durability.job_span"
      (fun () -> x + 100)
  in
  let results, stats = Supervisor.run_jobs ~max_inflight:2 f jobs in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 2, Error (Err.Worker_failure { shard; _ }) ->
          Alcotest.(check int) "shard is the job index" 2 shard
      | 2, _ -> Alcotest.fail "raising tracer must surface as Worker_failure"
      | _, Ok v -> Alcotest.(check int) "other jobs unaffected" (i + 100) v
      | _, Error e -> Alcotest.failf "slot %d failed: %s" i (Err.to_string e))
    results;
  Alcotest.(check int) "one failure" 1 stats.Supervisor.failed;
  Alcotest.(check int) "three ok" 3 stats.Supervisor.ok

let test_run_jobs_validation () =
  let boom name thunk =
    match thunk () with
    | _ -> Alcotest.failf "%s: expected Invalid_input" name
    | exception Err.Error (Err.Invalid_input _) -> ()
  in
  boom "max_inflight 0" (fun () ->
      Supervisor.run_jobs ~max_inflight:0 (fun _ _ x -> x) [| 1 |]);
  boom "queue_budget 0" (fun () ->
      Supervisor.run_jobs ~queue_budget:0 (fun _ _ x -> x) [| 1 |]);
  boom "negative deadline" (fun () ->
      Supervisor.run_jobs ~deadline_s:(-1.0) (fun _ _ x -> x) [| 1 |]);
  boom "breaker threshold 0" (fun () -> Supervisor.breaker ~failure_threshold:0 "b");
  boom "breaker nan cooldown" (fun () ->
      Supervisor.breaker ~cooldown_s:Float.nan "b")

let test_breaker_state_machine () =
  let b = Supervisor.breaker ~failure_threshold:2 ~cooldown_s:0.05 "test" in
  Alcotest.(check bool) "closed allows" true (Supervisor.breaker_allows b);
  Supervisor.breaker_success b;
  (* two consecutive failures open it *)
  Alcotest.(check bool) "still allows" true (Supervisor.breaker_allows b);
  Supervisor.breaker_failure b;
  Alcotest.(check bool) "one failure stays closed" true
    (Supervisor.breaker_state b = Supervisor.Closed);
  Alcotest.(check bool) "allows again" true (Supervisor.breaker_allows b);
  Supervisor.breaker_failure b;
  Alcotest.(check bool) "threshold opens" true
    (Supervisor.breaker_state b = Supervisor.Open);
  Alcotest.(check bool) "open refuses" false (Supervisor.breaker_allows b);
  (* after the cooldown, exactly one probe gets through *)
  Unix.sleepf 0.08;
  Alcotest.(check bool) "cooldown admits the probe" true
    (Supervisor.breaker_allows b);
  Alcotest.(check bool) "half-open" true
    (Supervisor.breaker_state b = Supervisor.Half_open);
  Alcotest.(check bool) "second caller refused while probing" false
    (Supervisor.breaker_allows b);
  (* probe failure re-opens and restarts the cooldown *)
  Supervisor.breaker_failure b;
  Alcotest.(check bool) "probe failure re-opens" true
    (Supervisor.breaker_state b = Supervisor.Open);
  Alcotest.(check bool) "re-opened refuses" false (Supervisor.breaker_allows b);
  (* probe success closes *)
  Unix.sleepf 0.08;
  Alcotest.(check bool) "second probe admitted" true
    (Supervisor.breaker_allows b);
  Supervisor.breaker_success b;
  Alcotest.(check bool) "probe success closes" true
    (Supervisor.breaker_state b = Supervisor.Closed);
  Alcotest.(check bool) "closed again" true (Supervisor.breaker_allows b);
  Supervisor.breaker_success b

let test_signal_exit_codes () =
  Alcotest.(check int) "sigint" 130 (Supervisor.signal_exit_code Sys.sigint);
  Alcotest.(check int) "sigterm" 143 (Supervisor.signal_exit_code Sys.sigterm);
  Alcotest.(check int) "sighup" 129 (Supervisor.signal_exit_code Sys.sighup);
  Alcotest.(check int) "raw positive" 137 (Supervisor.signal_exit_code 9)

let test_with_graceful_stop () =
  (* no signal: result passes through, no signal reported *)
  let v, signal = Supervisor.with_graceful_stop (fun _tok -> 42) in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check (option int)) "no signal" None signal;
  (* a SIGTERM mid-run flips the token and is reported, not fatal *)
  let v, signal =
    Supervisor.with_graceful_stop (fun tok ->
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        (* give the runtime a chance to deliver the signal *)
        let rec wait n =
          if n = 0 then false
          else if Guard.is_cancelled tok then true
          else begin
            Unix.sleepf 0.01;
            wait (n - 1)
          end
        in
        wait 200)
  in
  Alcotest.(check bool) "token cancelled by handler" true v;
  Alcotest.(check (option int)) "signal reported" (Some Sys.sigterm) signal

(* --- Sampling: the durable replay cache --- *)

let sampling_workload () =
  let dut =
    { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 6;
      widths = [ 6; 6 ] }
  in
  let rng = Prng.create 11 in
  let training =
    [ [ Hlp_sim.Streams.uniform rng ~width:6 ~n:120;
        Hlp_sim.Streams.uniform rng ~width:6 ~n:120 ] ]
  in
  let obs = List.map (Hlp_power.Macromodel.observe dut) training in
  let model = Hlp_power.Macromodel.fit Hlp_power.Macromodel.Bitwise dut obs in
  let traces =
    [ Hlp_sim.Streams.uniform rng ~width:6 ~n:300;
      Hlp_sim.Streams.uniform rng ~width:6 ~n:300 ]
  in
  (model, dut, traces)

let test_sampling_cache () =
  with_telemetry @@ fun () ->
  let model, dut, traces = sampling_workload () in
  let plain = Hlp_power.Sampling.prepare model dut traces in
  let path = temp "cache" in
  Sys.remove path;
  let hits () = Telemetry.count (Telemetry.counter "sampling.cache_hits") in
  let misses () = Telemetry.count (Telemetry.counter "sampling.cache_misses") in
  let same what t =
    Alcotest.(check int64) (what ^ ": gate reference bits")
      (bits (Hlp_power.Sampling.gate_reference plain))
      (bits (Hlp_power.Sampling.gate_reference t));
    Alcotest.(check int64) (what ^ ": census bits")
      (bits (Hlp_power.Sampling.census plain).Hlp_power.Sampling.value)
      (bits (Hlp_power.Sampling.census t).Hlp_power.Sampling.value)
  in
  (* cold: miss, recompute, write *)
  same "cold" (Hlp_power.Sampling.prepare_journaled ~path model dut traces);
  Alcotest.(check int) "one miss" 1 (misses ());
  (* warm: served from the journal *)
  same "warm" (Hlp_power.Sampling.prepare_journaled ~path model dut traces);
  Alcotest.(check int) "one hit" 1 (hits ());
  (* torn cache (killed writer): treated as a miss, rewritten, correct *)
  let raw = read_file path in
  write_file path (String.sub raw 0 (String.length raw / 2));
  same "torn" (Hlp_power.Sampling.prepare_journaled ~path model dut traces);
  Alcotest.(check int) "torn counts as a miss" 2 (misses ());
  same "rewritten" (Hlp_power.Sampling.prepare_journaled ~path model dut traces);
  Alcotest.(check int) "rewritten cache hits again" 2 (hits ());
  (* different engine: header mismatch, never serves the wrong data.
     Census is bit-identical across engines; gate reference only agrees to
     round-off, so it is not compared here. *)
  let other =
    Hlp_power.Sampling.prepare_journaled ~engine:Hlp_sim.Engine.Bitparallel
      ~path model dut traces
  in
  Alcotest.(check int64) "other engine: census bits"
    (bits (Hlp_power.Sampling.census plain).Hlp_power.Sampling.value)
    (bits (Hlp_power.Sampling.census other).Hlp_power.Sampling.value);
  Alcotest.(check int) "engine change misses" 3 (misses ());
  Sys.remove path

let suite =
  [
    Alcotest.test_case "journal append/recover roundtrip" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal missing file recovers empty" `Quick
      test_journal_missing_file;
    Alcotest.test_case "journal CRC corruption drops the tail" `Quick
      test_journal_crc_corruption;
    QCheck_alcotest.to_alcotest qcheck_recover_any_truncation;
    Alcotest.test_case "write_atomic replaces whole files" `Quick
      test_write_atomic;
    Alcotest.test_case "scalar checkpoint does not perturb the estimate" `Quick
      test_scalar_checkpoint_passive;
    Alcotest.test_case "scalar resume after interrupt is byte-identical" `Quick
      test_scalar_resume_after_interrupt;
    Alcotest.test_case "scalar resume with every=3 records" `Quick
      test_scalar_resume_every_n;
    QCheck_alcotest.to_alcotest qcheck_scalar_resume_any_truncation;
    Alcotest.test_case "header mismatch self-heals to a fresh run" `Quick
      test_scalar_header_mismatch_self_heals;
    Alcotest.test_case "checkpoint validation" `Quick test_checkpoint_validation;
    Alcotest.test_case "bit-parallel resume is byte-identical" `Quick
      test_units_resume_after_interrupt;
    Alcotest.test_case "parallel-engine resume is byte-identical" `Quick
      test_parallel_resume_after_interrupt;
    Alcotest.test_case "SIGKILLed child resumes byte-identical" `Quick
      test_sigkill_resume_byte_identical;
    Alcotest.test_case "run_jobs: order, results, bounded in-flight" `Quick
      test_run_jobs_basic;
    Alcotest.test_case "run_jobs contains typed errors" `Quick
      test_run_jobs_contains_typed_errors;
    Alcotest.test_case "run_jobs contains untyped exceptions" `Quick
      test_run_jobs_contains_untyped_exceptions;
    Alcotest.test_case "run_jobs contains a raising tracer" `Quick
      test_run_jobs_contains_raising_tracer;
    Alcotest.test_case "run_jobs sheds over-budget queue" `Quick
      test_run_jobs_queue_shedding;
    Alcotest.test_case "run_jobs sheds on dead deadline / cancelled token"
      `Quick test_run_jobs_deadline_and_cancel_shedding;
    Alcotest.test_case "run_jobs and breaker validate parameters" `Quick
      test_run_jobs_validation;
    Alcotest.test_case "circuit breaker state machine" `Quick
      test_breaker_state_machine;
    Alcotest.test_case "signal exit codes" `Quick test_signal_exit_codes;
    Alcotest.test_case "with_graceful_stop reports the signal" `Quick
      test_with_graceful_stop;
    Alcotest.test_case "sampling replay cache: hit, torn, mismatch" `Quick
      test_sampling_cache;
  ]
