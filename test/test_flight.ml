(* The flight recorder: Hdr histogram laws (bucketing, merge algebra,
   quantile error bound vs exact sorted samples), Telemetry histogram
   gating, Journal.Lines rotation, and the server-side access log /
   request-id correlation through a live server+service pair. *)

open Hlp_util
open Hlp_power

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

let with_trace f =
  Trace.disable ();
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

(* --- Hdr histogram --- *)

let test_hdr_basics () =
  let h = Hdr.create () in
  Alcotest.(check int) "empty count" 0 (Hdr.count h);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Hdr.quantile (Hdr.snapshot h) 0.5));
  List.iter (Hdr.record h) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Hdr.record h Float.nan;
  Hdr.record h Float.infinity;
  (* non-finite ignored *)
  Hdr.record h (-7.0);
  (* negative clamps to zero *)
  let s = Hdr.snapshot h in
  Alcotest.(check int) "count" 6 s.Hdr.total;
  Alcotest.(check (float 1e-9)) "min" 0.0 s.Hdr.minv;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Hdr.maxv;
  Alcotest.(check (float 1e-9)) "sum" 15.0 s.Hdr.sum;
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Hdr.mean s);
  (* values below [sub_buckets] land in exact unit buckets *)
  Alcotest.(check (float 1e-9)) "p50 exact below 32" 2.0
    (Hdr.quantile s 0.50);
  Alcotest.(check (float 1e-9)) "p100 exact below 32" 5.0 (Hdr.quantile s 1.0);
  Hdr.clear h;
  Alcotest.(check int) "cleared" 0 (Hdr.count h);
  (match Hdr.quantile s 0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q = 0 accepted");
  match Hdr.quantile s 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q > 1 accepted"

let test_hdr_bucket_bounds () =
  (* buckets tile [0, inf) contiguously with monotone bounds *)
  let prev_high = ref 0.0 in
  for i = 0 to 1500 do
    let low, high = Hdr.bucket_bounds i in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "bucket %d starts where %d ended" i (i - 1))
      !prev_high low;
    Alcotest.(check bool)
      (Printf.sprintf "bucket %d nonempty" i)
      true (high > low);
    prev_high := high
  done;
  (* width/low never exceeds twice the advertised relative error *)
  for i = 32 to 1500 do
    let low, high = Hdr.bucket_bounds i in
    Alcotest.(check bool)
      (Printf.sprintf "bucket %d relative width" i)
      true
      ((high -. low) /. low <= (2.0 *. Hdr.max_relative_error) +. 1e-12)
  done

let test_hdr_merge_identity () =
  let h = Hdr.create () in
  List.iter (Hdr.record h) [ 3.0; 900.0; 1.0e6 ];
  let s = Hdr.snapshot h in
  let m = Hdr.merge Hdr.empty s in
  Alcotest.(check int) "total" s.Hdr.total m.Hdr.total;
  Alcotest.(check (float 1e-9)) "sum" s.Hdr.sum m.Hdr.sum;
  Alcotest.(check (float 1e-9)) "min" s.Hdr.minv m.Hdr.minv;
  Alcotest.(check (float 1e-9)) "max" s.Hdr.maxv m.Hdr.maxv;
  Alcotest.(check bool) "counts" true (m.Hdr.counts = s.Hdr.counts)

(* structural snapshot equality with nan-tolerant float compare *)
let snap_equal a b =
  let feq x y = (Float.is_nan x && Float.is_nan y) || x = y in
  a.Hdr.counts = b.Hdr.counts
  && a.Hdr.total = b.Hdr.total
  && feq a.Hdr.sum b.Hdr.sum
  && feq a.Hdr.minv b.Hdr.minv
  && feq a.Hdr.maxv b.Hdr.maxv

let snapshot_of_list vs =
  let h = Hdr.create () in
  List.iter (fun v -> Hdr.record h (float_of_int v)) vs;
  Hdr.snapshot h

let qcheck_merge_associative_commutative =
  QCheck.Test.make
    ~name:"histogram merge is associative, commutative, with empty identity"
    ~count:100
    QCheck.(
      triple
        (small_list (int_bound 2_000_000))
        (small_list (int_bound 2_000_000))
        (small_list (int_bound 2_000_000)))
    (fun (xs, ys, zs) ->
      let a = snapshot_of_list xs
      and b = snapshot_of_list ys
      and c = snapshot_of_list zs in
      snap_equal (Hdr.merge a (Hdr.merge b c)) (Hdr.merge (Hdr.merge a b) c)
      && snap_equal (Hdr.merge a b) (Hdr.merge b a)
      && snap_equal (Hdr.merge a Hdr.empty) a
      (* merging is the same as recording the concatenated sample *)
      && snap_equal (Hdr.merge a b) (snapshot_of_list (xs @ ys)))

let qcheck_quantile_relative_error_bound =
  QCheck.Test.make
    ~name:"histogram quantiles within max_relative_error of exact quantiles"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 500) (int_range 1 50_000_000))
    (fun vs ->
      let snap = snapshot_of_list vs in
      let sorted = Array.of_list (List.map float_of_int vs) in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
          let exact = sorted.(rank - 1) in
          let approx = Hdr.quantile snap q in
          abs_float (approx -. exact)
          <= (Hdr.max_relative_error *. exact) +. 1e-9)
        [ 0.5; 0.9; 0.99; 0.999; 1.0 ])

(* --- Telemetry histograms --- *)

let test_telemetry_histogram_gating () =
  with_telemetry @@ fun () ->
  let hg = Telemetry.histogram "test.flight.latency" in
  Telemetry.disable ();
  Telemetry.record hg 5.0;
  Alcotest.(check int) "disabled records nothing" 0 (Telemetry.hist_count hg);
  Telemetry.enable ();
  Telemetry.record hg 100.0;
  Telemetry.record hg 200.0;
  Alcotest.(check int) "enabled records" 2 (Telemetry.hist_count hg);
  Alcotest.(check bool) "same name, same histogram" true
    (Telemetry.hist_count (Telemetry.histogram "test.flight.latency") = 2);
  (* the report payload carries quantiles per histogram *)
  let v = Telemetry.json_value () in
  let h =
    Option.bind (Json.member "histograms" v)
      (Json.member "test.flight.latency")
  in
  (match h with
  | None -> Alcotest.fail "histogram missing from telemetry json"
  | Some h ->
      Alcotest.(check (option int)) "count in json" (Some 2)
        (Option.bind (Json.member "count" h) Json.to_int_opt);
      Alcotest.(check bool) "p99 present" true
        (Option.bind (Json.member "p99" h) Json.to_float_opt <> None));
  Telemetry.reset ();
  Alcotest.(check int) "reset clears" 0 (Telemetry.hist_count hg)

(* --- Journal.Lines rotation --- *)

let test_lines_rotation_bound () =
  let path = Filename.temp_file "hlp_lines" ".log" in
  let rotated = path ^ ".1" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; rotated ])
  @@ fun () ->
  let max_bytes = 256 in
  let t = Journal.Lines.open_ ~max_bytes path in
  let record i = Printf.sprintf "{\"seq\":%d,\"pad\":\"%s\"}" i (String.make 20 'x') in
  for i = 0 to 99 do
    Journal.Lines.append t (record i)
  done;
  (match Journal.Lines.append t "embedded\nnewline" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "embedded newline accepted");
  Journal.Lines.close t;
  (match Journal.Lines.append t "after close" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "append after close accepted");
  let size p = (Unix.stat p).Unix.st_size in
  Alcotest.(check bool) "live file within bound" true (size path <= max_bytes);
  Alcotest.(check bool) "rotation happened" true (Sys.file_exists rotated);
  Alcotest.(check bool) "rotated file within bound" true
    (size rotated <= max_bytes);
  (* the surviving suffix is contiguous, line-parseable, and ends at 99 *)
  let lines p =
    let ic = open_in p in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let seqs =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok v -> (
            match Option.bind (Json.member "seq" v) Json.to_int_opt with
            | Some s -> s
            | None -> Alcotest.failf "line without seq: %s" l)
        | Error e -> Alcotest.failf "unparseable line %s: %s" l e)
      (lines rotated @ lines path)
  in
  (match List.rev seqs with
  | last :: _ -> Alcotest.(check int) "last record survived" 99 last
  | [] -> Alcotest.fail "no surviving records");
  let rec contiguous = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check int) "contiguous sequence" (a + 1) b;
        contiguous rest
    | _ -> ()
  in
  contiguous seqs;
  (* reopening continues where the file left off, no truncation *)
  let t2 = Journal.Lines.open_ ~max_bytes path in
  let before = size path in
  Journal.Lines.append t2 "{\"seq\":100}";
  Journal.Lines.close t2;
  Alcotest.(check bool) "reopen appends" true (size path > before);
  match Journal.Lines.open_ ~max_bytes:0 path with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive max_bytes accepted"

(* --- live server: access log, rid correlation, metrics --- *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/hlp_flight_test_%d_%d.sock"
      (Filename.get_temp_dir_name ()) (Unix.getpid ()) !n

let with_server ?access_log ?slow_s f =
  let path = fresh_socket () in
  let token = Guard.token ~name:"test_flight" () in
  let ready = Atomic.make false in
  let service = Service.create () in
  let srv =
    Domain.spawn (fun () ->
        Server.serve ?access_log ?slow_s ~overload:Service.overload_response
          ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path (Service.handle service))
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check bool) "server came up" true (Atomic.get ready);
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () -> f path)

let parse_ok what raw =
  match Service.parse_response raw with
  | Error e -> Alcotest.failf "%s: bad response %s: %s" what raw e
  | Ok r -> r

let read_log path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  List.map
    (fun l ->
      match Json.parse l with
      | Ok v -> v
      | Error e -> Alcotest.failf "unparseable access-log line %s: %s" l e)
    (go [])

let str_field name v =
  match Option.bind (Json.member name v) Json.to_str_opt with
  | Some s -> s
  | None -> Alcotest.failf "access-log line missing %s" name

let test_access_log_and_rid_echo () =
  with_telemetry @@ fun () ->
  let log = Filename.temp_file "hlp_access" ".log" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ log; log ^ ".1" ])
  @@ fun () ->
  let sent = ref 0 in
  with_server ~access_log:log (fun path ->
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
      @@ fun () ->
      let ask what payload =
        incr sent;
        parse_ok what (Server.request conn payload)
      in
      (* caller rid echoed in the envelope *)
      let r = ask "ping" (Service.ping_request ~id:1 ~rid:"flight-ping" ()) in
      Alcotest.(check string) "rid echoed" "flight-ping"
        r.Service.rid;
      (* builder-stamped rids carry the client prefix *)
      let r2 = ask "ping2" (Service.ping_request ~id:2 ()) in
      Alcotest.(check bool) "client rid stamped" true
        (String.length r2.Service.rid > 0 && r2.Service.rid.[0] = 'c');
      (* no rid at all: the transport stamps a server-side fallback *)
      let r3 = ask "bare" "{\"id\":3,\"op\":\"ping\"}" in
      Alcotest.(check bool) "server fallback rid" true
        (String.length r3.Service.rid > 0 && r3.Service.rid.[0] = 's');
      (* a miss/hit estimate pair: both cache outcomes on the record *)
      let est id =
        Service.estimate_request ~id
          ~rid:(Printf.sprintf "flight-est-%d" id)
          ~circuit:"adder" ~width:6 ~seed:3 ()
      in
      let m = ask "estimate miss" (est 4) in
      Alcotest.(check bool) "first estimate uncached" false m.Service.cached;
      let h = ask "estimate hit" (est 5) in
      Alcotest.(check bool) "second estimate cached" true h.Service.cached;
      (* an error still logs, with its typed class *)
      let e =
        ask "unknown circuit"
          (Service.estimate_request ~id:6 ~rid:"flight-bad"
             ~circuit:"nonesuch" ~width:4 ())
      in
      Alcotest.(check bool) "error response" false e.Service.ok;
      Alcotest.(check string) "error rid echoed" "flight-bad" e.Service.rid);
  (* drained: read the whole log back *)
  let lines = read_log log in
  Alcotest.(check int) "one line per request" !sent (List.length lines);
  let rids = List.map (str_field "rid") lines in
  Alcotest.(check int) "rids unique" (List.length rids)
    (List.length (List.sort_uniq compare rids));
  Alcotest.(check bool) "caller rid in log" true
    (List.mem "flight-ping" rids);
  let by_rid r =
    List.find_opt (fun v -> str_field "rid" v = r) lines
  in
  (match by_rid "flight-est-4" with
  | Some v ->
      Alcotest.(check string) "miss outcome" "miss" (str_field "cache" v);
      Alcotest.(check string) "op" "estimate" (str_field "op" v);
      Alcotest.(check bool) "key recorded" true (str_field "key" v <> "");
      Alcotest.(check string) "ok status" "ok" (str_field "status" v)
  | None -> Alcotest.fail "miss line not found");
  (match by_rid "flight-est-5" with
  | Some v ->
      Alcotest.(check string) "hit outcome" "hit" (str_field "cache" v);
      (* identical request, identical fingerprint key *)
      Alcotest.(check bool) "hit and miss share the key" true
        (Option.map (str_field "key") (by_rid "flight-est-4")
        = Some (str_field "key" v))
  | None -> Alcotest.fail "hit line not found");
  (match by_rid "flight-bad" with
  | Some v ->
      Alcotest.(check string) "typed error class as status" "invalid-input"
        (str_field "status" v)
  | None -> Alcotest.fail "error line not found");
  List.iter
    (fun v ->
      let num name =
        match Option.bind (Json.member name v) Json.to_float_opt with
        | Some x -> x
        | None -> Alcotest.failf "line missing %s" name
      in
      Alcotest.(check bool) "service_s nonnegative" true (num "service_s" >= 0.0);
      Alcotest.(check bool) "queue_s nonnegative" true (num "queue_s" >= 0.0);
      Alcotest.(check bool) "bytes_in positive" true (num "bytes_in" > 0.0);
      Alcotest.(check bool) "bytes_out positive" true (num "bytes_out" > 0.0))
    lines

let test_slow_request_correlated () =
  with_telemetry @@ fun () ->
  with_trace @@ fun () ->
  let log = Filename.temp_file "hlp_slow" ".log" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ log; log ^ ".1" ])
  @@ fun () ->
  with_server ~access_log:log ~slow_s:0.02 (fun path ->
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
      @@ fun () ->
      let fast =
        parse_ok "fast" (Server.request conn (Service.ping_request ~id:1 ()))
      in
      Alcotest.(check bool) "fast ok" true fast.Service.ok;
      let slow =
        parse_ok "slow"
          (Server.request conn
             (Service.ping_request ~id:2 ~rid:"slow-rid" ~sleep_s:0.05 ()))
      in
      Alcotest.(check bool) "slow ok" true slow.Service.ok);
  Alcotest.(check bool) "slow counter bumped" true
    (Telemetry.count (Telemetry.counter "server.slow_requests") >= 1);
  (* the same rid in the log... *)
  let slow_line =
    List.find_opt
      (fun v -> str_field "rid" v = "slow-rid")
      (read_log log)
  in
  (match slow_line with
  | Some v ->
      let s =
        Option.value ~default:0.0
          (Option.bind (Json.member "service_s" v) Json.to_float_opt)
      in
      Alcotest.(check bool) "service time covers the sleep" true (s >= 0.05)
  | None -> Alcotest.fail "slow request not in access log");
  (* ...and in the trace, as a slow-request instant *)
  let found =
    match Json.member "traceEvents" (Trace.json_value ()) with
    | Some (Json.List events) ->
        List.exists
          (fun e ->
            Option.bind (Json.member "name" e) Json.to_str_opt
            = Some "server.slow_request"
            && Option.bind (Json.member "args" e) (fun a ->
                   Option.bind (Json.member "rid" a) Json.to_str_opt)
               = Some "slow-rid")
          events
    | _ -> false
  in
  Alcotest.(check bool) "slow instant carries the rid" true found

let test_metrics_op_and_stats_alias () =
  with_telemetry @@ fun () ->
  with_server (fun path ->
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
      @@ fun () ->
      (* traffic first, so the snapshot has something to show *)
      let est id =
        Service.estimate_request ~id ~circuit:"adder" ~width:6 ~seed:9 ()
      in
      ignore (parse_ok "miss" (Server.request conn (est 1)));
      ignore (parse_ok "hit" (Server.request conn (est 2)));
      let m =
        parse_ok "metrics"
          (Server.request conn (Service.metrics_request ~id:3 ()))
      in
      Alcotest.(check bool) "metrics ok" true m.Service.ok;
      let mv = Option.get m.Service.result in
      let get name = Json.member name mv in
      Alcotest.(check bool) "uptime present" true
        (Option.bind (get "uptime_s") Json.to_float_opt <> None);
      Alcotest.(check bool) "telemetry flag" true
        (get "telemetry_enabled" = Some (Json.Bool true));
      (* per-op service histogram observed the estimate requests *)
      (match Option.bind (get "histograms") (Json.member "server.op.estimate.service_ns") with
      | Some h ->
          Alcotest.(check bool) "estimate observations" true
            (match Option.bind (Json.member "count" h) Json.to_int_opt with
            | Some c -> c >= 2
            | None -> false);
          Alcotest.(check bool) "p50 present" true
            (Option.bind (Json.member "p50" h) Json.to_float_opt <> None)
      | None -> Alcotest.fail "per-op histogram missing from metrics");
      (* cache occupancy objects with hit ratios *)
      (match Option.bind (get "caches") (Json.member "server.estimates") with
      | Some c ->
          Alcotest.(check (option int)) "estimate hits" (Some 1)
            (Option.bind (Json.member "hits" c) Json.to_int_opt);
          Alcotest.(check (option int)) "estimate misses" (Some 1)
            (Option.bind (Json.member "misses" c) Json.to_int_opt);
          Alcotest.(check (option (float 1e-9))) "hit ratio" (Some 0.5)
            (Option.bind (Json.member "hit_ratio" c) Json.to_float_opt)
      | None -> Alcotest.fail "estimate cache missing from metrics");
      (* stats stays a thin alias: its fields agree with metrics *)
      let s =
        parse_ok "stats" (Server.request conn (Service.stats_request ~id:4 ()))
      in
      let sv = Option.get s.Service.result in
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (field ^ " agrees between stats and metrics")
            true
            (Json.member field sv = Json.member field mv))
        [ "netlists"; "symbolic"; "models"; "estimates"; "estimates_inflight";
          "kernel_plans"; "breaker" ];
      (* prometheus rendering of the same snapshot *)
      let prom = Service.prometheus_of_metrics mv in
      let contains needle =
        let nl = String.length needle and hl = String.length prom in
        let rec go i =
          i + nl <= hl && (String.sub prom i nl = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("prometheus has " ^ needle) true
            (contains needle))
        [ "hlpower_uptime_seconds";
          "# TYPE hlpower_server_requests counter";
          "hlpower_cache_hits{cache=\"server.estimates\"} 1";
          "hlpower_server_op_estimate_service_ns_bucket{le=\"+Inf\"}";
          "hlpower_server_op_estimate_service_ns_count" ])

let suite =
  [ Alcotest.test_case "hdr basics" `Quick test_hdr_basics;
    Alcotest.test_case "hdr bucket bounds" `Quick test_hdr_bucket_bounds;
    Alcotest.test_case "hdr merge identity" `Quick test_hdr_merge_identity;
    QCheck_alcotest.to_alcotest qcheck_merge_associative_commutative;
    QCheck_alcotest.to_alcotest qcheck_quantile_relative_error_bound;
    Alcotest.test_case "telemetry histogram gating" `Quick
      test_telemetry_histogram_gating;
    Alcotest.test_case "lines rotation bound" `Quick test_lines_rotation_bound;
    Alcotest.test_case "access log and rid echo" `Quick
      test_access_log_and_rid_echo;
    Alcotest.test_case "slow request correlated" `Quick
      test_slow_request_correlated;
    Alcotest.test_case "metrics op and stats alias" `Quick
      test_metrics_op_and_stats_alias ]
