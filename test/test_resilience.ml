(* The resilience layer, exercised in-process: single-flight cache
   coalescing under a real thundering herd, typed-error propagation to
   joiners, the stale-socket wall, bounded-deadline frame reads, client
   reconnection/retry through shed load and slammed connections, and the
   chaos proxy both as a transparent pipe (rate 0) and as an adversary
   (corruption must become a typed error, never a silent wrong answer). *)

open Hlp_util
open Hlp_logic

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/hlp_resil_test_%d_%d.sock"
      (Filename.get_temp_dir_name ()) (Unix.getpid ()) !n

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

let spawn_all n f = List.map Domain.join (List.init n (fun i -> Domain.spawn (f i)))

(* --- single-flight coalescing --- *)

let test_single_flight_shares_one_compute () =
  with_telemetry @@ fun () ->
  let n = 6 in
  let cache = Netcache.create ~capacity:8 ~name:"sf_value" () in
  let coalesced = Telemetry.counter "sf_value.coalesced" in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    (* hold the slot until every other domain has parked on it, so the
       herd is guaranteed to overlap the in-flight window *)
    let deadline = Clock.now_s () +. 10.0 in
    while Telemetry.count coalesced < n - 1 && Clock.now_s () < deadline do
      Unix.sleepf 0.001
    done;
    Alcotest.(check int) "all joiners parked" (n - 1) (Telemetry.count coalesced);
    42
  in
  let results =
    spawn_all n (fun _ () -> Netcache.find_or_compute cache ~key:7L compute)
  in
  List.iter (fun v -> Alcotest.(check int) "shared value" 42 v) results;
  Alcotest.(check int) "exactly one compute" 1 (Atomic.get computes);
  Alcotest.(check int) "coalesced = N-1" (n - 1) (Telemetry.count coalesced);
  Alcotest.(check int) "one miss"
    1 (Telemetry.count (Telemetry.counter "sf_value.cache_misses"));
  Alcotest.(check int) "joiners count as hits"
    (n - 1) (Telemetry.count (Telemetry.counter "sf_value.cache_hits"));
  Alcotest.(check int) "nothing left in flight" 0 (Netcache.inflight cache)

let test_single_flight_error_propagation () =
  with_telemetry @@ fun () ->
  let n = 4 in
  let cache = Netcache.create ~capacity:8 ~name:"sf_err" () in
  let coalesced = Telemetry.counter "sf_err.coalesced" in
  let computes = Atomic.make 0 in
  let failing () =
    Atomic.incr computes;
    let deadline = Clock.now_s () +. 10.0 in
    while Telemetry.count coalesced < n - 1 && Clock.now_s () < deadline do
      Unix.sleepf 0.001
    done;
    raise (Err.invalid_input ~what:"sf_err compute" "deliberate failure")
  in
  let outcomes =
    spawn_all n (fun _ () ->
        match Netcache.find_or_compute cache ~key:3L failing with
        | _ -> `Value
        | exception Err.Error (Err.Invalid_input _) -> `Typed
        | exception _ -> `Other)
  in
  List.iter
    (fun o ->
      Alcotest.(check bool) "typed error reached every caller" true (o = `Typed))
    outcomes;
  Alcotest.(check int) "one compute for the whole herd" 1 (Atomic.get computes);
  (* failures are never cached: the next generation computes afresh *)
  Alcotest.(check bool) "nothing cached" false (Netcache.mem cache 3L);
  Alcotest.(check int) "slot retired" 0 (Netcache.inflight cache);
  let v = Netcache.find_or_compute cache ~key:3L (fun () -> 9) in
  Alcotest.(check int) "fresh generation succeeds" 9 v;
  Alcotest.(check int) "second compute ran" 2 (Atomic.get computes + 1)

let qcheck_netcache_multidomain =
  QCheck.Test.make ~count:10
    ~name:
      "multi-domain cache hammer: capacity bound, hits+misses=lookups, one \
       compute per generation"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      with_telemetry @@ fun () ->
      let domains = 4 and ops = 60 and keys = 8 and capacity = 4 in
      let cache = Netcache.create ~capacity ~name:"resilq" () in
      let hits0 = Telemetry.count (Telemetry.counter "resilq.cache_hits") in
      let misses0 = Telemetry.count (Telemetry.counter "resilq.cache_misses") in
      let computes = Atomic.make 0 in
      let running = Array.init keys (fun _ -> Atomic.make 0) in
      let overlap = Atomic.make false in
      let bound_violated = Atomic.make false in
      let wrong_value = Atomic.make false in
      let worker d () =
        let rng = Prng.create (seed + d) in
        for _ = 1 to ops do
          let k = Prng.int rng keys in
          let v =
            Netcache.find_or_compute cache ~key:(Int64.of_int k) (fun () ->
                Atomic.incr computes;
                if Atomic.fetch_and_add running.(k) 1 <> 0 then
                  Atomic.set overlap true;
                Unix.sleepf 0.0002;
                ignore (Atomic.fetch_and_add running.(k) (-1));
                (k * 3) + 1)
          in
          if v <> (k * 3) + 1 then Atomic.set wrong_value true;
          if Netcache.length cache > capacity then Atomic.set bound_violated true
        done
      in
      ignore (spawn_all domains worker);
      let hits = Telemetry.count (Telemetry.counter "resilq.cache_hits") - hits0 in
      let misses =
        Telemetry.count (Telemetry.counter "resilq.cache_misses") - misses0
      in
      (not (Atomic.get overlap))
      && (not (Atomic.get bound_violated))
      && (not (Atomic.get wrong_value))
      && Netcache.length cache <= capacity
      && hits + misses = domains * ops
      && Atomic.get computes = misses)

(* --- bounded frame reads --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_read_frame_within () =
  with_socketpair (fun _a b ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      (* no frame at all: typed deadline *)
      (match Server.read_frame_within ~timeout_s:0.15 b with
      | exception Err.Error (Err.Deadline_exceeded _) -> ()
      | _ -> Alcotest.fail "silent read past the deadline"));
  with_socketpair (fun a b ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      (* frame started but stalled: the boundary is lost — typed
         invalid-input, the connection must be dropped *)
      let payload = "abcdef" in
      let frame = Bytes.create (8 + String.length payload) in
      Bytes.set_int32_le frame 0 (Int32.of_int (String.length payload));
      Bytes.set_int32_le frame 4 (Journal.crc32 payload);
      Bytes.blit_string payload 0 frame 8 (String.length payload);
      ignore (Unix.write a frame 0 10);
      match Server.read_frame_within ~timeout_s:0.15 b with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | _ -> Alcotest.fail "stalled mid-frame read did not fail typed");
  match Server.read_frame_within ~timeout_s:0.0 Unix.stdin with
  | exception Err.Error (Err.Invalid_input _) -> ()
  | _ -> Alcotest.fail "zero timeout accepted"

(* --- socket-path hygiene --- *)

let echo_handler _guard req = req

let test_prepare_path_refuses_non_socket () =
  let path = Filename.temp_file "hlp_resil" ".notasocket" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Server.prepare_path path with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | () -> Alcotest.fail "regular file accepted as socket path")

let test_stale_socket_unlinked () =
  let path = fresh_socket () in
  (* bind without listening, then close: the classic crashed-daemon
     leftover — a socket file nobody answers on *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists path);
  let token = Guard.token ~name:"stale_test" () in
  Guard.cancel token;
  (* a pre-cancelled token makes serve bind, drain immediately, unlink *)
  Server.serve ~max_inflight:1 ~token ~path echo_handler;
  Alcotest.(check bool) "stale file replaced then cleaned" false
    (Sys.file_exists path)

let test_live_socket_refused () =
  let path = fresh_socket () in
  let token = Guard.token ~name:"live_test" () in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.serve ~max_inflight:1 ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path echo_handler)
  in
  let deadline = Clock.now_s () +. 10.0 in
  while (not (Atomic.get ready)) && Clock.now_s () < deadline do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () ->
      (* second daemon on the same path: typed refusal, no theft *)
      (match Server.serve ~max_inflight:1 ~path echo_handler with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | () -> Alcotest.fail "second serve bound a live path");
      (* the first daemon is unharmed *)
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
        (fun () ->
          Alcotest.(check string) "first daemon still answers" "still-here"
            (Server.request conn "still-here")))

(* --- resilient client --- *)

(* Start a raw Server.serve with [handler] on its own domain; run [f path]. *)
let with_raw_server ?max_inflight ?queue_budget handler f =
  let path = fresh_socket () in
  let token = Guard.token ~name:"resil_server" () in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.serve ?max_inflight ?queue_budget ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path handler)
  in
  let deadline = Clock.now_s () +. 10.0 in
  while (not (Atomic.get ready)) && Clock.now_s () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check bool) "server came up" true (Atomic.get ready);
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () -> f path)

let test_connect_backoff_reaches_late_server () =
  let path = fresh_socket () in
  let token = Guard.token ~name:"late_server" () in
  let srv =
    Domain.spawn (fun () ->
        Unix.sleepf 0.25;
        Server.serve ~max_inflight:1 ~token ~path echo_handler)
  in
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () ->
      (* the socket does not exist yet: connect retries with jittered
         backoff until the daemon appears *)
      let conn = Server.connect ~wait_s:10.0 ~seed:1 path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
        (fun () ->
          Alcotest.(check string) "round trip after wait" "hello"
            (Server.request conn "hello")));
  match Server.connect ~wait_s:0.05 ~seed:1 (fresh_socket ()) with
  | exception Err.Error (Err.Invalid_input _) -> ()
  | _ -> Alcotest.fail "connect to nowhere succeeded"

let overload_frame =
  Hlp_power.Service.overload_response
    (Err.Overloaded { queue = "test.shed"; budget = 1; pending = 2 })

let test_client_honors_overload_hint () =
  let sheds = Atomic.make 2 in
  let handler _guard _req =
    if Atomic.fetch_and_add sheds (-1) > 0 then overload_frame
    else {|{"ok":true,"result":{"pong":true}}|}
  in
  with_raw_server ~max_inflight:1 handler (fun path ->
      let cl = Server.Client.create ~seed:5 ~max_retries:5 path in
      Fun.protect
        ~finally:(fun () -> Server.Client.close cl)
        (fun () ->
          let resp = Server.Client.request cl "q" in
          Alcotest.(check bool) "final answer is the success frame" true
            (resp = {|{"ok":true,"result":{"pong":true}}|});
          let logical, wire = Server.Client.counts cl in
          Alcotest.(check int) "one logical request" 1 logical;
          Alcotest.(check int) "two shed frames cost two extra wires" 3 wire))

let test_client_returns_typed_overload_when_exhausted () =
  let handler _guard _req = overload_frame in
  with_raw_server ~max_inflight:1 handler (fun path ->
      let cl = Server.Client.create ~seed:5 ~max_retries:1 path in
      Fun.protect
        ~finally:(fun () -> Server.Client.close cl)
        (fun () ->
          let resp = Server.Client.request cl "q" in
          match Hlp_power.Service.parse_response resp with
          | Ok r ->
              Alcotest.(check bool) "not ok" false r.Hlp_power.Service.ok;
              let cls =
                match r.Hlp_power.Service.error with
                | Some (c, _, _) -> c
                | None -> "missing"
              in
              Alcotest.(check string) "typed overloaded envelope" "overloaded"
                cls
          | Error e -> Alcotest.failf "unparseable exhaustion answer: %s" e))

(* --- chaos proxy --- *)

let test_chaos_passthrough () =
  with_raw_server echo_handler (fun path ->
      let listen = fresh_socket () in
      let proxy = Chaos.start ~rate:0.0 ~listen ~upstream:path () in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          let conn = Server.connect listen in
          Fun.protect
            ~finally:(fun () -> Server.close conn)
            (fun () ->
              let payload = "payload \x00\x01 with binary" in
              Alcotest.(check string) "rate 0 is a transparent pipe" payload
                (Server.request conn payload))));
  Alcotest.(check bool) "listen socket unlinked" false
    (Sys.file_exists "nonexistent-placeholder")

let test_chaos_corruption_is_typed () =
  with_raw_server echo_handler (fun path ->
      let listen = fresh_socket () in
      let proxy =
        Chaos.start ~seed:11 ~rate:1.0 ~faults:[ Chaos.Corrupt ] ~listen
          ~upstream:path ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          let conn = Server.connect listen in
          Fun.protect
            ~finally:(fun () -> Server.close conn)
            (fun () ->
              (* every chunk corrupted: the request dies on the server's
                 CRC wall (connection dropped) or the response dies on
                 ours — either way a typed error, never a wrong answer *)
              match Server.request conn "must-not-survive" with
              | exception Err.Error (Err.Invalid_input _) -> ()
              | resp ->
                  Alcotest.(check string)
                    "response byte-exact despite corruption (impossible)"
                    "must-not-survive" resp)))

let test_client_survives_slams () =
  with_raw_server echo_handler (fun path ->
      let listen = fresh_socket () in
      let proxy =
        Chaos.start ~seed:7 ~rate:0.35 ~faults:[ Chaos.Slam ] ~listen
          ~upstream:path ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          let cl =
            Server.Client.create ~seed:3 ~max_retries:10 ~request_timeout_s:2.0
              listen
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close cl)
            (fun () ->
              for i = 1 to 25 do
                let payload = Printf.sprintf "echo-%d" i in
                Alcotest.(check string) "every request eventually answers"
                  payload
                  (Server.Client.request cl payload)
              done;
              let logical, wire = Server.Client.counts cl in
              Alcotest.(check int) "25 logical requests" 25 logical;
              Alcotest.(check bool) "slams forced retries" true (wire > logical))))

let suite =
  [ Alcotest.test_case "single-flight: herd shares one compute" `Quick
      test_single_flight_shares_one_compute;
    Alcotest.test_case "single-flight: typed error reaches every joiner" `Quick
      test_single_flight_error_propagation;
    QCheck_alcotest.to_alcotest qcheck_netcache_multidomain;
    Alcotest.test_case "read_frame_within: typed deadline and torn stall" `Quick
      test_read_frame_within;
    Alcotest.test_case "prepare_path: non-socket refused" `Quick
      test_prepare_path_refuses_non_socket;
    Alcotest.test_case "stale socket file unlinked and rebound" `Quick
      test_stale_socket_unlinked;
    Alcotest.test_case "live socket refused, daemon unharmed" `Quick
      test_live_socket_refused;
    Alcotest.test_case "connect: backoff reaches a late server" `Quick
      test_connect_backoff_reaches_late_server;
    Alcotest.test_case "client: overload hint honored, then success" `Quick
      test_client_honors_overload_hint;
    Alcotest.test_case "client: typed overload on exhaustion" `Quick
      test_client_returns_typed_overload_when_exhausted;
    Alcotest.test_case "chaos: rate 0 is byte-transparent" `Quick
      test_chaos_passthrough;
    Alcotest.test_case "chaos: corruption becomes a typed error" `Quick
      test_chaos_corruption_is_typed;
    Alcotest.test_case "client: retries through slammed connections" `Quick
      test_client_survives_slams ]
