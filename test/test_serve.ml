(* The estimation daemon, exercised in-process: frame codec identities
   and corruption walls, cold/warm byte-identity through a live
   server+service pair, deterministic overload shedding, handler
   exception containment, and graceful drain via token cancellation. *)

open Hlp_util
open Hlp_power

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/hlp_serve_test_%d_%d.sock" (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !n

(* --- frame codec --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payloads =
        [ ""; "x"; "{\"op\":\"ping\"}"; String.make 70_000 'q';
          "\x00\xff binary \x01" ]
      in
      List.iter (fun p -> Server.write_frame a p) payloads;
      List.iter
        (fun p ->
          match Server.read_frame b with
          | Some got ->
              Alcotest.(check int) "length" (String.length p) (String.length got);
              Alcotest.(check bool) "payload bytes" true (String.equal p got)
          | None -> Alcotest.fail "eof before all frames read")
        payloads;
      Unix.close a;
      Alcotest.(check bool) "clean eof after close" true
        (Server.read_frame b = None))

let test_frame_corruption () =
  (* flip one payload byte after the CRC was computed: loud Invalid_input,
     not a silently different payload *)
  with_socketpair (fun a b ->
      let payload = "{\"id\":1,\"op\":\"ping\"}" in
      let buf = Buffer.create 64 in
      Buffer.add_string buf (String.make 4 '\x00');
      let frame = Bytes.create (8 + String.length payload) in
      Bytes.set_int32_le frame 0 (Int32.of_int (String.length payload));
      Bytes.set_int32_le frame 4 (Journal.crc32 payload);
      Bytes.blit_string payload 0 frame 8 (String.length payload);
      Bytes.set frame 10 (Char.chr (Char.code (Bytes.get frame 10) lxor 0x40));
      let n = Unix.write a frame 0 (Bytes.length frame) in
      Alcotest.(check int) "frame written whole" (Bytes.length frame) n;
      (match Server.read_frame b with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | exception e ->
          Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | Some _ -> Alcotest.fail "corrupted frame accepted"
      | None -> Alcotest.fail "corrupted frame read as eof");
      ignore buf)

let test_frame_oversized_and_torn () =
  with_socketpair (fun a b ->
      (* a length header over the cap is rejected before allocation *)
      let hdr = Bytes.create 8 in
      Bytes.set_int32_le hdr 0 (Int32.of_int (Server.max_frame_bytes + 1));
      Bytes.set_int32_le hdr 4 0l;
      ignore (Unix.write a hdr 0 8);
      (match Server.read_frame b with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | _ -> Alcotest.fail "oversized length accepted"));
  with_socketpair (fun a b ->
      (* peer dying mid-frame is Invalid_input, not a clean eof *)
      let payload = "abcdef" in
      let frame = Bytes.create (8 + String.length payload) in
      Bytes.set_int32_le frame 0 (Int32.of_int (String.length payload));
      Bytes.set_int32_le frame 4 (Journal.crc32 payload);
      Bytes.blit_string payload 0 frame 8 (String.length payload);
      ignore (Unix.write a frame 0 10);
      Unix.close a;
      match Server.read_frame b with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | Some _ -> Alcotest.fail "torn frame accepted"
      | None -> Alcotest.fail "torn frame read as clean eof")

let test_oversized_write_rejected () =
  with_socketpair (fun a _b ->
      match Server.write_frame a (String.make (Server.max_frame_bytes + 1) 'z')
      with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | () -> Alcotest.fail "oversized payload written")

(* --- live server harness --- *)

(* Start a server on its own domain, run [f], then cancel the token and
   join: every test also exercises graceful drain on the way out. *)
let with_server ?max_inflight ?queue_budget ?(handler : Server.handler option)
    f =
  let path = fresh_socket () in
  let token = Guard.token ~name:"test_serve" () in
  let ready = Atomic.make false in
  let service = Service.create ~cooldown_s:0.05 () in
  let handler =
    match handler with Some h -> h | None -> Service.handle service
  in
  let srv =
    Domain.spawn (fun () ->
        Server.serve ?max_inflight ?queue_budget
          ~overload:Service.overload_response ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path handler)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check bool) "server came up" true (Atomic.get ready);
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv;
      Alcotest.(check bool) "socket unlinked after drain" false
        (Sys.file_exists path))
    (fun () -> f path service)

let parse_ok what raw =
  match Service.parse_response raw with
  | Error e -> Alcotest.failf "%s: bad response %s: %s" what raw e
  | Ok r -> r

let test_cold_warm_byte_identity () =
  with_server (fun path _service ->
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
        (fun () ->
          let req id =
            Service.estimate_request ~id ~engine:"bitparallel" ~seed:11
              ~relative_precision:0.1 ~circuit:"adder" ~width:6 ()
          in
          let cold = parse_ok "cold" (Server.request conn (req 1)) in
          let warm = parse_ok "warm" (Server.request conn (req 2)) in
          Alcotest.(check bool) "cold ok" true cold.Service.ok;
          Alcotest.(check bool) "warm ok" true warm.Service.ok;
          Alcotest.(check bool) "cold is a miss" false cold.Service.cached;
          Alcotest.(check bool) "warm is a hit" true warm.Service.cached;
          Alcotest.(check int) "ids echoed" 2 warm.Service.id;
          match
            (Service.result_string cold, Service.result_string warm)
          with
          | Some c, Some w ->
              Alcotest.(check string) "warm result byte-identical" c w
          | _ -> Alcotest.fail "result missing from an ok response"))

let test_distinct_keys_not_conflated () =
  with_server (fun path _service ->
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
        (fun () ->
          let ask seed =
            parse_ok "estimate"
              (Server.request conn
                 (Service.estimate_request ~seed ~relative_precision:0.2
                    ~circuit:"parity" ~width:5 ()))
          in
          let a = ask 3 and b = ask 4 in
          Alcotest.(check bool) "different seed is a different key" false
            (b.Service.cached);
          Alcotest.(check bool) "both succeeded" true
            (a.Service.ok && b.Service.ok)))

let test_error_envelopes () =
  with_server (fun path _service ->
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
        (fun () ->
          let checks =
            [ ("not json at all", "]]junk[[", "invalid-input");
              ("unknown op", {|{"id":7,"op":"divine"}|}, "invalid-input");
              ( "unknown circuit",
                {|{"id":8,"op":"estimate","circuit":"warp","width":4}|},
                "invalid-input" );
              ( "bad width",
                {|{"id":9,"op":"estimate","circuit":"adder","width":-2}|},
                "invalid-input" ) ]
          in
          List.iter
            (fun (what, req, cls) ->
              let r = parse_ok what (Server.request conn req) in
              Alcotest.(check bool) (what ^ ": not ok") false r.Service.ok;
              match r.Service.error with
              | Some (c, _msg, code) ->
                  Alcotest.(check string) (what ^ ": class") cls c;
                  Alcotest.(check int) (what ^ ": exit code") 65 code
              | None -> Alcotest.failf "%s: error field missing" what)
            checks;
          (* the connection survived every bad request *)
          let pong = parse_ok "ping after errors"
              (Server.request conn (Service.ping_request ~id:10 ()))
          in
          Alcotest.(check bool) "still serving" true pong.Service.ok))

let test_overload_sheds_typed_frame () =
  (* one worker, admission budget one: a sleeper pins the worker, one
     connection waits in the queue, and the third must get the typed
     Overloaded frame instead of queueing without bound. *)
  with_server ~max_inflight:1 ~queue_budget:1 (fun path _service ->
      let c1 = Server.connect path in
      let sleeper =
        Domain.spawn (fun () ->
            Server.request c1 (Service.ping_request ~id:1 ~sleep_s:1.0 ()))
      in
      Unix.sleepf 0.25;
      (* worker is now asleep in c1's request *)
      let c2 = Server.connect path in
      let waiter =
        Domain.spawn (fun () ->
            Server.request c2 (Service.ping_request ~id:2 ()))
      in
      Unix.sleepf 0.25;
      (* c2 occupies the whole queue budget; c3 must be shed *)
      let c3 = Server.connect path in
      let shed =
        match Server.request c3 (Service.ping_request ~id:3 ()) with
        | raw -> parse_ok "shed frame" raw
        | exception Err.Error (Err.Invalid_input _) ->
            (* server closed after writing the overload frame and our
               request raced the close: read what it did send *)
            Alcotest.fail "overload frame lost"
      in
      Alcotest.(check bool) "shed response not ok" false shed.Service.ok;
      (match shed.Service.error with
      | Some (cls, _msg, code) ->
          Alcotest.(check string) "typed class" "overloaded" cls;
          Alcotest.(check int) "exit code 70" 70 code
      | None -> Alcotest.fail "shed frame carried no error");
      (* the worker stays parked on c1 until that connection closes, so
         free it before expecting the queued connection to be served *)
      let pong1 = parse_ok "sleeper completes" (Domain.join sleeper) in
      Server.close c1;
      let pong2 = parse_ok "queued request completes" (Domain.join waiter) in
      Alcotest.(check bool) "in-flight request finished" true pong1.Service.ok;
      Alcotest.(check bool) "queued request finished" true pong2.Service.ok;
      Server.close c2;
      Server.close c3)

let test_handler_exception_closes_only_that_connection () =
  let handler _guard payload =
    if String.equal payload "boom" then failwith "handler exploded"
    else payload
  in
  with_server ~handler (fun path _service ->
      let c1 = Server.connect path in
      (match Server.request c1 "boom" with
      | exception Err.Error (Err.Invalid_input _) -> ()
      | _ -> Alcotest.fail "connection survived a handler exception");
      Server.close c1;
      (* the server itself is still alive for the next connection *)
      let c2 = Server.connect path in
      Alcotest.(check string) "echo after crash" "hello"
        (Server.request c2 "hello");
      Server.close c2)

let test_sampler_deterministic_across_requests () =
  with_server (fun path _service ->
      let conn = Server.connect path in
      Fun.protect
        ~finally:(fun () -> Server.close conn)
        (fun () ->
          let ask () =
            let r =
              parse_ok "sampler"
                (Server.request conn
                   (Service.sampler_request ~seed:23 ~cycles:64
                      ~circuit:"multiplier" ~width:4 ()))
            in
            Alcotest.(check bool) "sampler ok" true r.Service.ok;
            Option.get (Service.result_string r)
          in
          let first = ask () in
          let second = ask () in
          Alcotest.(check string) "same request, same bytes" first second))

let suite =
  [
    Alcotest.test_case "frame: write/read roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: CRC corruption is loud" `Quick
      test_frame_corruption;
    Alcotest.test_case "frame: oversized and torn frames rejected" `Quick
      test_frame_oversized_and_torn;
    Alcotest.test_case "frame: oversized write rejected" `Quick
      test_oversized_write_rejected;
    Alcotest.test_case "serve: warm estimate is cached and byte-identical"
      `Quick test_cold_warm_byte_identity;
    Alcotest.test_case "serve: distinct parameters are distinct cache keys"
      `Quick test_distinct_keys_not_conflated;
    Alcotest.test_case "serve: typed error envelopes, connection survives"
      `Quick test_error_envelopes;
    Alcotest.test_case "serve: overload sheds a typed frame" `Quick
      test_overload_sheds_typed_frame;
    Alcotest.test_case "serve: handler exception contained to one connection"
      `Quick test_handler_exception_closes_only_that_connection;
    Alcotest.test_case "serve: sampler responses deterministic" `Quick
      test_sampler_deterministic_across_requests;
  ]
