(* Observability layer: Json emit/parse, Trace export shape and nesting,
   injected-clock regressions for Telemetry/Guard, attribution sum
   identities, and run provenance. *)

open Hlp_util

let with_trace ?capacity f =
  Trace.disable ();
  Trace.reset ();
  Trace.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* --- Json --- *)

let sample_json =
  Json.(
    Obj
      [ ("name", Str "trace \"quoted\"\nline");
        ("count", Int 42);
        ("ratio", Float 0.25);
        ("missing", Null);
        ("ok", Bool true);
        ("items", List [ Int 1; Float 1.5; Str "x"; Bool false; Null ]);
        ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]) ])

let test_json_roundtrip () =
  let check_roundtrip what s =
    match Json.parse s with
    | Ok v -> Alcotest.(check bool) what true (v = sample_json)
    | Error e -> Alcotest.failf "%s: parse error: %s" what e
  in
  check_roundtrip "pretty roundtrip" (Json.to_string sample_json);
  check_roundtrip "compact roundtrip" (Json.to_string ~compact:true sample_json)

let test_json_accessors () =
  let open Json in
  Alcotest.(check (option int)) "member int" (Some 42)
    (Option.bind (member "count" sample_json) to_int_opt);
  Alcotest.(check (option (float 0.0))) "int widens to float" (Some 42.0)
    (Option.bind (member "count" sample_json) to_float_opt);
  Alcotest.(check (option (float 0.0))) "float member" (Some 0.25)
    (Option.bind (member "ratio" sample_json) to_float_opt);
  Alcotest.(check (option int)) "list length" (Some 5)
    (Option.map List.length
       (Option.bind (member "items" sample_json) to_list_opt));
  Alcotest.(check bool) "missing key" true (member "nope" sample_json = None);
  Alcotest.(check bool) "type mismatch" true
    (Option.bind (member "name" sample_json) to_int_opt = None)

let test_json_parse_errors () =
  let bad = [ "{"; "[1, 2"; "tru"; "\"unterminated"; "{\"a\" 1}"; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

let expect_parse what s expected =
  match Json.parse s with
  | Ok v -> Alcotest.(check bool) what true (v = expected)
  | Error e -> Alcotest.failf "%s: parse error on %S: %s" what s e

let expect_reject what s =
  match Json.parse s with
  | Ok _ -> Alcotest.failf "%s: accepted %S" what s
  | Error _ -> ()

let test_json_unicode_escapes () =
  expect_parse "BMP ascii" "\"\\u0041\"" (Json.Str "A");
  expect_parse "BMP two-byte" "\"\\u00e9\"" (Json.Str "\xc3\xa9");
  expect_parse "BMP three-byte" "\"\\u20ac\"" (Json.Str "\xe2\x82\xac");
  expect_parse "uppercase hex" "\"\\u20AC\"" (Json.Str "\xe2\x82\xac");
  expect_parse "surrogate pair" "\"\\ud83d\\ude00\""
    (Json.Str "\xf0\x9f\x98\x80");
  expect_parse "escaped control" "\"\\u0007\"" (Json.Str "\x07");
  (* exactly four hex digits, no substitutes *)
  expect_reject "underscore in hex" "\"\\u0_41\"";
  expect_reject "too short" "\"\\u12\"";
  expect_reject "non-hex" "\"\\u00g1\"";
  (* surrogate halves never stand alone *)
  expect_reject "lone high surrogate" "\"\\ud800\"";
  expect_reject "lone low surrogate" "\"\\udc00\"";
  expect_reject "high surrogate then escape" "\"\\ud83d\\u0041\"";
  expect_reject "high surrogate then raw char" "\"\\ud83dA\"";
  (* parse-then-emit identity through the escape table *)
  let s = Json.Str "bell\x07 tab\t quote\" back\\ nl\n" in
  expect_parse "control chars roundtrip" (Json.to_string ~compact:true s) s

let test_json_number_strictness () =
  expect_parse "zero" "0" (Json.Int 0);
  expect_parse "negative zero int" "-0" (Json.Int 0);
  expect_parse "plain int" "10" (Json.Int 10);
  expect_parse "fraction" "1.5" (Json.Float 1.5);
  expect_parse "exponent" "1e3" (Json.Float 1e3);
  expect_parse "signed exponent" "1E+3" (Json.Float 1e3);
  expect_parse "everything at once" "-0.5e-2" (Json.Float (-0.5e-2));
  (* grammar-valid but beyond native int range widens to float *)
  expect_parse "huge int widens" "123456789012345678901234567890"
    (Json.Float 1.2345678901234568e29);
  expect_reject "leading zero" "01";
  expect_reject "negative leading zero" "-01";
  expect_reject "leading plus" "+1";
  expect_reject "trailing dot" "1.";
  expect_reject "leading dot" ".5";
  expect_reject "bare exponent" "1e";
  expect_reject "exponent sign only" "1e+";
  expect_reject "double minus" "--1";
  expect_reject "digit separator" "1_0"

let test_json_float_repr_identity () =
  let cases =
    [ 0.1; -0.0; 1.0 /. 3.0; 1e-300; 4.9e-324; 1.7976931348623157e308;
      1e22; 123456789.123456789; 3.141592653589793; -2.5e-8; 1234567890.0 ]
  in
  List.iter
    (fun f ->
      let s = Json.float_repr f in
      (match Json.parse s with
      | Ok (Json.Float g) ->
          Alcotest.(check bool)
            (Printf.sprintf "bits preserved through %s" s)
            true
            (Int64.bits_of_float g = Int64.bits_of_float f)
      | Ok _ -> Alcotest.failf "%s parsed to a non-float" s
      | Error e -> Alcotest.failf "repr %s rejected: %s" s e);
      Alcotest.(check bool)
        (Printf.sprintf "%s is at most 17 significant digits" s)
        true
        (String.length s <= 25))
    cases;
  (* integer-shaped reprs keep a mark so they reparse as floats *)
  Alcotest.(check string) "integer-shaped keeps .0" "2.0" (Json.float_repr 2.0);
  Alcotest.(check string) "non-finite is null" "null" (Json.float_repr Float.nan)

(* Generator for the roundtrip wall: nasty strings (control chars, quotes,
   backslashes), extreme-but-finite floats, native int extremes, and
   nesting several levels deep. *)
let json_value_gen =
  let open QCheck.Gen in
  let nasty_char =
    frequency
      [ (8, printable);
        (2, map Char.chr (int_bound 31));
        (1, return '"');
        (1, return '\\');
        (1, return '\x7f') ]
  in
  let str_gen = string_size ~gen:nasty_char (int_bound 12) in
  let float_gen =
    let finite f = if Float.is_finite f then f else 0.0 in
    frequency
      [ (3, map finite float);
        (1,
         oneofl
           [ 0.1; -0.0; 1e-300; 4.9e-324; 1.7976931348623157e308; 1e22;
             -3.141592653589793e-15 ]) ]
  in
  let int_gen =
    frequency [ (4, small_signed_int); (1, oneofl [ max_int; min_int; 0 ]) ]
  in
  let leaf =
    frequency
      [ (1, return Json.Null);
        (1, map (fun b -> Json.Bool b) bool);
        (2, map (fun i -> Json.Int i) int_gen);
        (2, map (fun f -> Json.Float f) float_gen);
        (2, map (fun s -> Json.Str s) str_gen) ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (2, map (fun l -> Json.List l)
                (list_size (int_bound 4) (node (depth - 1))));
          (2,
           map
             (fun kvs -> Json.Obj kvs)
             (list_size (int_bound 4)
                (map2 (fun k v -> (k, v)) str_gen (node (depth - 1))))) ]
  in
  (* occasionally wrap in a deep single-spine chain to stress nesting *)
  let deep v =
    let rec wrap n v = if n = 0 then v else wrap (n - 1) (Json.List [ v ]) in
    wrap 30 v
  in
  frequency [ (9, node 4); (1, map deep leaf) ]

let qcheck_json_roundtrip_wall =
  QCheck.Test.make ~count:300
    ~name:"parse (to_string v) = Ok v, compact and pretty"
    (QCheck.make ~print:(fun v -> Json.to_string ~compact:true v) json_value_gen)
    (fun v ->
      Json.parse (Json.to_string ~compact:true v) = Ok v
      && Json.parse (Json.to_string v) = Ok v)

(* --- Trace --- *)

(* Walk the exported traceEvents: per-tid stacks must balance (every E
   pops a B on the same tid) and timestamps must be sorted and
   non-negative. Returns (#B, #E, #i, distinct tids). *)
let check_export what =
  let json = Trace.to_json () in
  let v =
    match Json.parse json with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: export is not valid JSON: %s" what e
  in
  let events =
    match Option.bind (Json.member "traceEvents" v) Json.to_list_opt with
    | Some l -> l
    | None -> Alcotest.failf "%s: no traceEvents list" what
  in
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
  let tids = Hashtbl.create 4 in
  let last_ts = ref (-1.0) in
  let nb = ref 0 and ne = ref 0 and ni = ref 0 in
  List.iter
    (fun ev ->
      let field k = Json.member k ev in
      let ph =
        match Option.bind (field "ph") Json.to_str_opt with
        | Some p -> p
        | None -> Alcotest.failf "%s: event without ph" what
      in
      let tid =
        match Option.bind (field "tid") Json.to_int_opt with
        | Some t -> t
        | None -> Alcotest.failf "%s: event without tid" what
      in
      let name =
        match Option.bind (field "name") Json.to_str_opt with
        | Some n -> n
        | None -> Alcotest.failf "%s: event without name" what
      in
      (* metadata events (drop-count surfacing) carry no timestamp and sit
         outside the span stream *)
      if ph = "M" then begin
        if name <> "trace.dropped" then
          Alcotest.failf "%s: unexpected metadata event %S" what name
      end
      else
      let ts =
        match Option.bind (field "ts") Json.to_float_opt with
        | Some t -> t
        | None -> Alcotest.failf "%s: event without ts" what
      in
      if ts < 0.0 then Alcotest.failf "%s: negative ts %g" what ts;
      if ts < !last_ts then
        Alcotest.failf "%s: timestamps not sorted (%g after %g)" what ts
          !last_ts;
      last_ts := ts;
      Hashtbl.replace tids tid ();
      let stack =
        match Hashtbl.find_opt stacks tid with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks tid s;
            s
      in
      match ph with
      | "B" ->
          incr nb;
          stack := name :: !stack
      | "E" -> (
          incr ne;
          match !stack with
          | [] -> Alcotest.failf "%s: E without matching B on tid %d" what tid
          | _ :: rest -> stack := rest)
      | "i" -> incr ni
      | other -> Alcotest.failf "%s: unexpected ph %S" what other)
    events;
  Hashtbl.iter
    (fun tid s ->
      if !s <> [] then
        Alcotest.failf "%s: %d unclosed spans on tid %d" what (List.length !s)
          tid)
    stacks;
  (!nb, !ne, !ni, Hashtbl.length tids)

let test_trace_disabled_noop () =
  Trace.disable ();
  Trace.reset ();
  let r = Trace.span "never.recorded" (fun () -> 41 + 1) in
  Alcotest.(check int) "span passes value through" 42 r;
  Trace.instant "never.recorded";
  Trace.begin_span "never.recorded";
  Trace.end_span ();
  Alcotest.(check int) "no events recorded" 0 (Trace.event_count ());
  let nb, ne, ni, _ = check_export "disabled" in
  Alcotest.(check int) "empty export" 0 (nb + ne + ni)

let test_trace_nesting_and_validity () =
  with_trace @@ fun () ->
  Trace.span "outer" (fun () ->
      Trace.instant
        ~args:(fun () -> [ ("why", Json.Str "marker") ])
        "tick";
      Trace.span
        ~args:(fun () -> [ ("depth", Json.Int 2) ])
        "inner"
        (fun () -> ignore (Sys.opaque_identity 1)));
  Trace.span "sibling" (fun () -> ());
  let nb, ne, ni, _ = check_export "nesting" in
  Alcotest.(check int) "three begins" 3 nb;
  Alcotest.(check int) "three ends" 3 ne;
  Alcotest.(check int) "one instant" 1 ni;
  Alcotest.(check int) "event_count matches" (nb + ne + ni)
    (Trace.event_count ())

let test_trace_exception_safe () =
  with_trace @@ fun () ->
  (try Trace.span "boom" (fun () -> raise Exit) with Exit -> ());
  let nb, ne, _, _ = check_export "exception" in
  Alcotest.(check int) "span closed despite raise" 1 nb;
  Alcotest.(check int) "E recorded" 1 ne

let test_trace_orphan_end_discarded () =
  with_trace @@ fun () ->
  Trace.end_span ();
  (* depth 0: must be discarded, not exported as a dangling E *)
  Trace.span "real" (fun () -> ());
  let nb, ne, _, _ = check_export "orphan end" in
  Alcotest.(check int) "only the real span's B" 1 nb;
  Alcotest.(check int) "only the real span's E" 1 ne

let test_trace_multidomain () =
  with_trace @@ fun () ->
  Trace.span "main.work" (fun () ->
      (* the container may have a single core, so Parsim won't spawn
         workers here; exercise the per-domain buffers directly *)
      let worker k () =
        for i = 1 to 5 do
          Trace.span
            ~args:(fun () -> [ ("worker", Json.Int k); ("i", Json.Int i) ])
            "worker.span"
            (fun () -> ignore (Sys.opaque_identity i))
        done
      in
      let d1 = Domain.spawn (worker 1) in
      let d2 = Domain.spawn (worker 2) in
      Domain.join d1;
      Domain.join d2);
  let nb, ne, _, tids = check_export "multidomain" in
  Alcotest.(check int) "1 + 2*5 begins" 11 nb;
  Alcotest.(check int) "balanced ends" 11 ne;
  Alcotest.(check bool) "three distinct tids" true (tids = 3)

let test_trace_drop_preserves_nesting () =
  (* a fresh spawned domain picks up the small capacity; overflow must
     drop newest events while keeping the stream well-nested *)
  with_trace ~capacity:16 @@ fun () ->
  let d =
    Domain.spawn (fun () ->
        for i = 1 to 40 do
          Trace.span "flood" (fun () -> ignore (Sys.opaque_identity i))
        done)
  in
  Domain.join d;
  Alcotest.(check bool) "events were dropped" true (Trace.dropped () > 0);
  let nb, ne, _, _ = check_export "overflow" in
  Alcotest.(check int) "surviving stream balanced" nb ne;
  (* the drop total must also be announced inside the event stream *)
  let has_drop_meta =
    match Option.bind (Json.member "traceEvents" (Trace.json_value ())) Json.to_list_opt with
    | None -> false
    | Some evs ->
        List.exists
          (fun ev ->
            Option.bind (Json.member "name" ev) Json.to_str_opt
            = Some "trace.dropped")
          evs
  in
  Alcotest.(check bool) "trace.dropped metadata event present" true has_drop_meta

(* --- tracing must not perturb results --- *)

let qcheck_tracing_is_pure =
  let net = Hlp_logic.Generators.adder_circuit 4 in
  QCheck.Test.make ~count:15
    ~name:"enabling tracing never changes Monte Carlo estimates"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let run () =
        Hlp_power.Probprop.monte_carlo ~seed ~max_cycles:300 net
      in
      Trace.disable ();
      Trace.reset ();
      let plain = run () in
      let traced = with_trace run in
      plain.Hlp_power.Probprop.estimate = traced.Hlp_power.Probprop.estimate
      && plain.Hlp_power.Probprop.half_interval
         = traced.Hlp_power.Probprop.half_interval
      && plain.Hlp_power.Probprop.cycles_used
         = traced.Hlp_power.Probprop.cycles_used
      && plain.Hlp_power.Probprop.batches
         = traced.Hlp_power.Probprop.batches)

(* --- injected clock (Clock.with_source) --- *)

let test_clock_monotonic () =
  let t1 = Clock.monotonic_ns () in
  let t2 = Clock.monotonic_ns () in
  Alcotest.(check bool) "monotonic_ns never decreases" true (Int64.compare t2 t1 >= 0);
  let s1 = Clock.now_s () in
  let s2 = Clock.now_s () in
  Alcotest.(check bool) "now_s never decreases" true (s2 >= s1)

let test_injected_clock_telemetry () =
  with_telemetry @@ fun () ->
  let t = ref 100.0 in
  let fake () =
    let v = !t in
    t := !t +. 2.5;
    v
  in
  let tm = Telemetry.timer "test.injected_clock" in
  Clock.with_source fake (fun () ->
      Telemetry.time tm (fun () -> ignore (Sys.opaque_identity 0)));
  let calls, secs = Telemetry.timer_stats tm in
  Alcotest.(check int) "one timed call" 1 calls;
  (* start read 100.0, finish read 102.5: exactly the injected step *)
  Alcotest.(check (float 1e-9)) "duration is the injected delta" 2.5 secs;
  Alcotest.(check bool) "real clock restored" true (Clock.now_s () > 1.0e3)

let test_injected_clock_guard () =
  let t = ref 50.0 in
  Clock.with_source
    (fun () -> !t)
    (fun () ->
      let g = Guard.create ~deadline_s:5.0 () in
      Guard.check g;
      t := 54.9;
      Guard.check g;
      Alcotest.(check (float 1e-9)) "elapsed from injected source" 4.9
        (Guard.elapsed_s g);
      Alcotest.(check bool) "not yet expired" false (Guard.expired g);
      t := 55.1;
      Alcotest.(check bool) "expired past the deadline" true (Guard.expired g);
      match Err.protect (fun () -> Guard.check g) with
      | Error (Err.Deadline_exceeded { limit_s; elapsed_s }) ->
          Alcotest.(check (float 1e-9)) "limit" 5.0 limit_s;
          Alcotest.(check (float 1e-9)) "elapsed" 5.1 elapsed_s
      | Ok () -> Alcotest.fail "deadline did not trip"
      | Error e -> Alcotest.failf "unexpected error: %s" (Err.to_string e))

let test_injected_clock_restored_on_raise () =
  (try
     Clock.with_source (fun () -> nan) (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "real clock restored after raise" true
    (Float.is_finite (Clock.now_s ()))

(* --- attribution --- *)

let vectors_for net ~seed ~n =
  let k = Array.length net.Hlp_logic.Netlist.inputs in
  let rng = Prng.create seed in
  let vecs = Array.init n (fun _ -> Array.init k (fun _ -> Prng.bool rng)) in
  fun c -> vecs.(c)

let test_attribution_sums () =
  let open Hlp_power in
  let net = Hlp_logic.Generators.adder_circuit 6 in
  let n = 400 in
  let vector = vectors_for net ~seed:11 ~n in
  let a = Attribution.profile net ~vector ~n in
  (* an independent replay of the same vectors *)
  let sim = Hlp_sim.Funcsim.create net in
  Hlp_sim.Funcsim.run sim vector n;
  let full_mask = Array.make (Hlp_logic.Netlist.num_nodes net) true in
  let exact = Hlp_sim.Funcsim.switched_capacitance_of sim ~mask:full_mask in
  Alcotest.(check (float 0.0)) "total is byte-identical to the replay total"
    exact a.Attribution.total;
  let event = Hlp_sim.Funcsim.switched_capacitance sim in
  let rel = Float.abs (event -. a.Attribution.total) /. Float.abs event in
  Alcotest.(check bool)
    "total matches the event-accumulated figure to 1e-9 relative" true
    (rel <= 1e-9);
  let entry_sum =
    Array.fold_left
      (fun acc e -> acc +. e.Attribution.switched)
      0.0 a.Attribution.entries
  in
  Alcotest.(check (float 1e-9)) "entries sum to total" a.Attribution.total
    entry_sum;
  let group_sum =
    List.fold_left
      (fun acc g -> acc +. g.Attribution.g_switched)
      0.0 a.Attribution.groups
  in
  Alcotest.(check (float 1e-9)) "group rollup sums to total"
    a.Attribution.total group_sum;
  let share_sum =
    Array.fold_left
      (fun acc e -> acc +. e.Attribution.share)
      0.0 a.Attribution.entries
  in
  Alcotest.(check (float 1e-9)) "shares sum to one" 1.0 share_sum;
  (* hottest-first ordering *)
  let sorted = ref true in
  Array.iteri
    (fun i e ->
      if i > 0 && e.Attribution.switched > a.Attribution.entries.(i - 1).Attribution.switched
      then sorted := false)
    a.Attribution.entries;
  Alcotest.(check bool) "entries sorted hottest first" true !sorted;
  let top3 = Attribution.top a 3 in
  Alcotest.(check int) "top k" 3 (List.length top3);
  let rep = Attribution.report ~top_k:5 a in
  Alcotest.(check bool) "report mentions the rollup" true
    (String.length rep > 0);
  match Json.parse (Json.to_string (Attribution.json_value ~top_k:5 a)) with
  | Ok v -> (
      (* floats print as %.9g, so the roundtrip is close, not bit-exact *)
      match Option.bind (Json.member "total" v) Json.to_float_opt with
      | Some t ->
          Alcotest.(check bool) "json total survives the roundtrip" true
            (Float.abs (t -. a.Attribution.total)
             <= 1e-8 *. Float.abs a.Attribution.total)
      | None -> Alcotest.fail "attribution json has no total")
  | Error e -> Alcotest.failf "attribution json invalid: %s" e

let test_attribution_bad_counts () =
  let net = Hlp_logic.Generators.adder_circuit 4 in
  match
    Err.protect (fun () ->
        Hlp_power.Attribution.of_counts net ~toggles:[| 1; 2; 3 |] ~cycles:10)
  with
  | Error (Err.Invalid_input _) -> ()
  | Ok _ -> Alcotest.fail "accepted mismatched toggle counts"
  | Error e -> Alcotest.failf "unexpected error: %s" (Err.to_string e)

let test_attribution_fir_groups () =
  let open Hlp_rtl in
  let design = Fir.build ~taps:[ 1; 2; 1 ] ~width:4 ~constant_mult:true () in
  let net = design.Fir.net in
  let n = 60 in
  let vector = vectors_for net ~seed:7 ~n in
  let a =
    Hlp_power.Attribution.profile ~group:(Fir.attribution_group design) net
      ~vector ~n
  in
  let allowed =
    "inputs"
    :: List.map Fir.category_name
         [ Fir.Exec_units; Fir.Registers_clock; Fir.Control_logic;
           Fir.Interconnect ]
  in
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "group %S is a design category" g.Hlp_power.Attribution.group)
        true
        (List.mem g.Hlp_power.Attribution.group allowed))
    a.Hlp_power.Attribution.groups;
  let group_sum =
    List.fold_left
      (fun acc g -> acc +. g.Hlp_power.Attribution.g_switched)
      0.0 a.Hlp_power.Attribution.groups
  in
  Alcotest.(check (float 1e-9)) "category rollup sums to total"
    a.Hlp_power.Attribution.total group_sum

(* --- provenance --- *)

let test_provenance_symbolic () =
  let open Hlp_power in
  let net = Hlp_logic.Generators.adder_circuit 4 in
  match Probprop.estimate_guarded net with
  | Error e -> Alcotest.failf "guarded estimate failed: %s" (Err.to_string e)
  | Ok g ->
      let p = g.Probprop.provenance in
      Alcotest.(check string) "symbolic path" "symbolic" p.Probprop.estimator_used;
      Alcotest.(check bool) "no sampling engine" true (p.Probprop.engine = None);
      Alcotest.(check bool) "no fallback" false p.Probprop.symbolic_fallback;
      Alcotest.(check int) "no batches" 0 p.Probprop.batches;
      Alcotest.(check int) "empty tail" 0
        (Array.length p.Probprop.convergence_tail);
      Alcotest.(check bool) "wall time recorded" true (p.Probprop.wall_time_s >= 0.0);
      Alcotest.(check bool) "telemetry was off" false p.Probprop.counters_live;
      (match Json.parse (Json.to_string (Probprop.provenance_json p)) with
      | Ok v ->
          Alcotest.(check (option string)) "json estimator" (Some "symbolic")
            (Option.bind (Json.member "estimator" v) Json.to_str_opt)
      | Error e -> Alcotest.failf "provenance json invalid: %s" e)

let test_provenance_fallback () =
  let open Hlp_power in
  let net = Hlp_logic.Generators.adder_circuit 4 in
  match
    Probprop.estimate_guarded ~node_limit:4 ~seed:5 ~engine:Hlp_sim.Engine.Scalar
      ~max_cycles:600 net
  with
  | Error e -> Alcotest.failf "guarded estimate failed: %s" (Err.to_string e)
  | Ok g ->
      let p = g.Probprop.provenance in
      Alcotest.(check string) "degraded to sampling" "monte_carlo"
        p.Probprop.estimator_used;
      Alcotest.(check bool) "budget trip recorded" true p.Probprop.symbolic_fallback;
      Alcotest.(check (option string)) "engine recorded" (Some "scalar")
        p.Probprop.engine;
      Alcotest.(check int) "seed recorded" 5 p.Probprop.seed;
      Alcotest.(check bool) "batches ran" true (p.Probprop.batches > 0);
      let tail = Array.length p.Probprop.convergence_tail in
      Alcotest.(check bool) "tail holds up to 8 batch means" true
        (tail > 0 && tail <= 8);
      Alcotest.(check bool) "confidence interval present" true
        (p.Probprop.half_interval <> None)

let suite =
  [
    Alcotest.test_case "json: emit/parse roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: accessors" `Quick test_json_accessors;
    Alcotest.test_case "json: malformed input rejected" `Quick
      test_json_parse_errors;
    Alcotest.test_case "json: unicode escapes decode to UTF-8" `Quick
      test_json_unicode_escapes;
    Alcotest.test_case "json: strict number grammar" `Quick
      test_json_number_strictness;
    Alcotest.test_case "json: float repr is shortest-roundtrip" `Quick
      test_json_float_repr_identity;
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip_wall;
    Alcotest.test_case "trace: disabled is a no-op" `Quick
      test_trace_disabled_noop;
    Alcotest.test_case "trace: export is valid, sorted, well-nested" `Quick
      test_trace_nesting_and_validity;
    Alcotest.test_case "trace: span closes on exception" `Quick
      test_trace_exception_safe;
    Alcotest.test_case "trace: orphan end discarded" `Quick
      test_trace_orphan_end_discarded;
    Alcotest.test_case "trace: per-domain buffers merge" `Quick
      test_trace_multidomain;
    Alcotest.test_case "trace: overflow drops stay well-nested" `Quick
      test_trace_drop_preserves_nesting;
    QCheck_alcotest.to_alcotest qcheck_tracing_is_pure;
    Alcotest.test_case "clock: monotonic readings" `Quick test_clock_monotonic;
    Alcotest.test_case "clock: injected source drives Telemetry.time" `Quick
      test_injected_clock_telemetry;
    Alcotest.test_case "clock: injected source drives Guard deadlines" `Quick
      test_injected_clock_guard;
    Alcotest.test_case "clock: source restored on raise" `Quick
      test_injected_clock_restored_on_raise;
    Alcotest.test_case "attribution: totals and rollups" `Quick
      test_attribution_sums;
    Alcotest.test_case "attribution: mismatched counts rejected" `Quick
      test_attribution_bad_counts;
    Alcotest.test_case "attribution: FIR category grouping" `Quick
      test_attribution_fir_groups;
    Alcotest.test_case "provenance: symbolic path" `Quick
      test_provenance_symbolic;
    Alcotest.test_case "provenance: budget trip degrades to sampling" `Quick
      test_provenance_fallback;
  ]
