let () =
  (* crash-test child mode: when the durability suite re-executes this
     binary to SIGKILL it mid-estimation, never start Alcotest *)
  Test_durability.run_child_if_requested ();
  (* pin refresh mode: print the kernel suite's golden bit patterns *)
  Test_kernel.print_pins_if_requested ();
  Alcotest.run "hlpower"
    [
      ("util", Test_util.suite);
      ("telemetry", Test_telemetry.suite);
      ("logic", Test_logic.suite);
      ("bdd", Test_bdd.suite);
      ("sim", Test_sim.suite);
      ("bitsim", Test_bitsim.suite);
      ("kernel", Test_kernel.suite);
      ("fsm", Test_fsm.suite);
      ("rtl", Test_rtl.suite);
      ("power", Test_power.suite);
      ("bus", Test_bus.suite);
      ("pm", Test_pm.suite);
      ("optlogic", Test_optlogic.suite);
      ("isa", Test_isa.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("robustness", Test_robustness.suite);
      ("durability", Test_durability.suite);
      ("serve", Test_serve.suite);
      ("resilience", Test_resilience.suite);
      ("observability", Test_observability.suite);
      ("flight", Test_flight.suite);
      ("lifecycle", Test_lifecycle.suite);
    ]
