open Hlp_bdd

let test_constants () =
  let m = Bdd.manager () in
  Alcotest.(check bool) "zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool) "not zero = one" true
    (Bdd.equal (Bdd.not_ m (Bdd.zero m)) (Bdd.one m))

let test_var_eval () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x (Bdd.not_ m y) in
  Alcotest.(check bool) "10" true (Bdd.eval f (fun v -> v = 0));
  Alcotest.(check bool) "11" false (Bdd.eval f (fun _ -> true));
  Alcotest.(check bool) "00" false (Bdd.eval f (fun _ -> false))

let test_hash_consing_canonicity () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  (* (x & y) | (x & z) == x & (y | z) *)
  let lhs = Bdd.or_ m (Bdd.and_ m x y) (Bdd.and_ m x z) in
  let rhs = Bdd.and_ m x (Bdd.or_ m y z) in
  Alcotest.(check bool) "distributivity" true (Bdd.equal lhs rhs);
  (* de morgan *)
  let a = Bdd.not_ m (Bdd.and_ m x y) in
  let b = Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m y) in
  Alcotest.(check bool) "de morgan" true (Bdd.equal a b)

let test_xor_identities () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check bool) "x^x=0" true (Bdd.is_zero (Bdd.xor_ m x x));
  Alcotest.(check bool) "x^0=x" true (Bdd.equal (Bdd.xor_ m x (Bdd.zero m)) x);
  Alcotest.(check bool) "xnor = not xor" true
    (Bdd.equal (Bdd.xnor_ m x y) (Bdd.not_ m (Bdd.xor_ m x y)))

let test_cofactor () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.or_ m (Bdd.and_ m x y) (Bdd.not_ m x) in
  Alcotest.(check bool) "f|x=1 is y" true (Bdd.equal (Bdd.cofactor m f ~var:0 true) y);
  Alcotest.(check bool) "f|x=0 is 1" true (Bdd.is_one (Bdd.cofactor m f ~var:0 false))

let test_quantification () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x y in
  Alcotest.(check bool) "exists x (x&y) = y" true (Bdd.equal (Bdd.exists m [ 0 ] f) y);
  Alcotest.(check bool) "forall x (x&y) = 0" true (Bdd.is_zero (Bdd.forall m [ 0 ] f));
  let g = Bdd.or_ m x y in
  Alcotest.(check bool) "forall x (x|y) = y" true (Bdd.equal (Bdd.forall m [ 0 ] g) y);
  Alcotest.(check bool) "exists both = 1" true (Bdd.is_one (Bdd.exists m [ 0; 1 ] g))

let test_compose () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  (* substitute y := (x ^ z) into f = x & y *)
  let f = Bdd.and_ m x y in
  let g = Bdd.xor_ m x z in
  let h = Bdd.compose m f ~var:1 g in
  let expect = Bdd.and_ m x (Bdd.xor_ m x z) in
  Alcotest.(check bool) "compose" true (Bdd.equal h expect);
  (* substituting a variable ordered above the branch point *)
  let f2 = Bdd.and_ m z y in
  let h2 = Bdd.compose m f2 ~var:2 x in
  Alcotest.(check bool) "compose upward" true (Bdd.equal h2 (Bdd.and_ m x y))

let test_support () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and z = Bdd.var m 5 in
  let f = Bdd.xor_ m x z in
  Alcotest.(check (list int)) "support" [ 0; 5 ] (Bdd.support f);
  Alcotest.(check (list int)) "const support" [] (Bdd.support (Bdd.one m))

let test_count_sat () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.or_ m x y in
  Alcotest.(check (float 1e-9)) "sat count or" 3.0 (Bdd.count_sat ~nvars:2 f);
  Alcotest.(check (float 1e-9)) "sat count xor over 3 vars" 4.0
    (Bdd.count_sat ~nvars:3 (Bdd.xor_ m x y))

let test_probability () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x y in
  let p = Bdd.probability m ~p:(fun i -> if i = 0 then 0.5 else 0.25) f in
  Alcotest.(check (float 1e-9)) "weighted prob" 0.125 p;
  let g = Bdd.or_ m x y in
  let pg = Bdd.probability m ~p:(fun _ -> 0.5) g in
  Alcotest.(check (float 1e-9)) "or prob" 0.75 pg

let test_pick_sat () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m (Bdd.not_ m x) y in
  (match Bdd.pick_sat f with
  | None -> Alcotest.fail "should be satisfiable"
  | Some assign ->
      let value v = List.assoc v assign in
      Alcotest.(check bool) "x false" false (value 0);
      Alcotest.(check bool) "y true" true (value 1));
  Alcotest.(check bool) "unsat" true (Bdd.pick_sat (Bdd.zero m) = None)

let test_of_netlist_adder () =
  let m = Bdd.manager () in
  let n = 4 in
  let net = Hlp_logic.Generators.adder_circuit n in
  let outs = Bdd.of_netlist m net in
  (* check sum bit semantics against integer addition on all 256 inputs *)
  for a = 0 to 15 do
    for b = 0 to 15 do
      let assign v = if v < n then Hlp_util.Bits.bit a v else Hlp_util.Bits.bit b (v - n) in
      let s = a + b in
      List.iter
        (fun (name, f) ->
          let got = Bdd.eval f assign in
          let expect =
            if name = "cout" then s > 15
            else
              let i = int_of_string (String.sub name 1 (String.length name - 1)) in
              Hlp_util.Bits.bit s i
          in
          Alcotest.(check bool) name expect got)
        outs
    done
  done

let test_bdd_size_xor_chain () =
  (* xor chains have linear BDDs: size should grow linearly, not blow up *)
  let m = Bdd.manager () in
  let chain k =
    let f = ref (Bdd.zero m) in
    for i = 0 to k - 1 do
      f := Bdd.xor_ m !f (Bdd.var m i)
    done;
    Bdd.size !f
  in
  let s8 = chain 8 and s16 = chain 16 in
  Alcotest.(check bool) "linear growth" true (s16 < 3 * s8);
  (* without complement edges an n-variable parity BDD has 2n - 1 nodes *)
  Alcotest.(check int) "xor chain size" 31 s16

let test_size_shared () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x y and g = Bdd.or_ m x y in
  let shared = Bdd.size_shared [ f; g ] in
  Alcotest.(check bool) "sharing less than sum" true (shared <= Bdd.size f + Bdd.size g)

let qcheck_ite_shannon =
  QCheck.Test.make ~name:"ite satisfies the Shannon expansion semantics"
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (tf, tg, th) ->
      (* interpret 8-bit truth tables over 3 vars *)
      let m = Bdd.manager () in
      let of_tt tt =
        let f = ref (Bdd.zero m) in
        for minterm = 0 to 7 do
          if Hlp_util.Bits.bit tt minterm then begin
            let cube =
              Bdd.conj m
                (List.init 3 (fun v ->
                     if Hlp_util.Bits.bit minterm v then Bdd.var m v
                     else Bdd.nvar m v))
            in
            f := Bdd.or_ m !f cube
          end
        done;
        !f
      in
      let f = of_tt tf and g = of_tt tg and h = of_tt th in
      let r = Bdd.ite m f g h in
      List.for_all
        (fun minterm ->
          let assign v = Hlp_util.Bits.bit minterm v in
          Bdd.eval r assign
          = if Bdd.eval f assign then Bdd.eval g assign else Bdd.eval h assign)
        (List.init 8 (fun i -> i)))

let test_budget_validation () =
  (match Bdd.manager ~node_limit:0 () with
  | _ -> Alcotest.fail "node_limit 0 accepted"
  | exception Hlp_util.Err.Error (Hlp_util.Err.Invalid_input _) -> ());
  Alcotest.(check (option int)) "limit accessor" (Some 64)
    (Bdd.node_limit (Bdd.manager ~node_limit:64 ()));
  Alcotest.(check (option int)) "unlimited accessor" None
    (Bdd.node_limit (Bdd.manager ()))

(* an interleaved-variable comparator-style function whose BDD is
   exponential: guaranteed to trip any small node budget *)
let blowup m nvars =
  let acc = ref (Bdd.one m) in
  for i = 0 to (nvars / 2) - 1 do
    acc := Bdd.and_ m !acc (Bdd.xnor_ m (Bdd.var m i) (Bdd.var m (nvars - 1 - i)))
  done;
  !acc

let test_budget_trips_and_node_count () =
  let limit = 40 in
  let m = Bdd.manager ~node_limit:limit () in
  (match blowup m 16 with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception Hlp_util.Err.Error (Hlp_util.Err.Budget_exceeded { budget; limit = l; used })
    ->
      Alcotest.(check string) "budget name" "bdd.nodes" budget;
      Alcotest.(check int) "reported limit" limit l;
      Alcotest.(check bool) "reported usage at the limit" true (used >= l));
  (* the budget is checked before insertion, so the table never grows past
     the limit *)
  Alcotest.(check bool)
    (Printf.sprintf "node_count %d <= limit %d" (Bdd.node_count m) limit)
    true
    (Bdd.node_count m <= limit)

let test_budget_manager_usable_after_trip () =
  let m = Bdd.manager ~node_limit:40 () in
  (* build a small function first; it must survive the later trip intact *)
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x (Bdd.not_ m y) in
  (try ignore (blowup m 16) with Hlp_util.Err.Error (Hlp_util.Err.Budget_exceeded _) -> ());
  (* existing nodes: still canonical, still evaluable, probabilities exact *)
  Alcotest.(check bool) "hash consing intact" true
    (Bdd.equal f (Bdd.and_ m (Bdd.var m 0) (Bdd.not_ m (Bdd.var m 1))));
  Alcotest.(check bool) "eval 10" true (Bdd.eval f (fun v -> v = 0));
  Alcotest.(check (float 1e-12)) "probability intact" 0.25
    (Bdd.probability m ~p:(fun _ -> 0.5) f)

let test_budget_injected_blowup () =
  (* the injected variant trips the same typed error without filling the
     table, so after disarming the same manager keeps working normally *)
  let m = Bdd.manager () in
  let x = Bdd.var m 0 in
  Hlp_util.Faultinject.with_faults ~rate:1.0 [ Hlp_util.Faultinject.Bdd_blowup ]
    (fun () ->
      match Bdd.and_ m x (Bdd.var m 1) with
      | _ -> Alcotest.fail "expected injected Budget_exceeded"
      | exception
          Hlp_util.Err.Error (Hlp_util.Err.Budget_exceeded { budget; _ }) ->
          Alcotest.(check string) "injected budget name" "bdd.nodes(injected)"
            budget);
  let f = Bdd.and_ m x (Bdd.var m 1) in
  Alcotest.(check (float 1e-12)) "manager recovered" 0.25
    (Bdd.probability m ~p:(fun _ -> 0.5) f)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "var eval" `Quick test_var_eval;
    Alcotest.test_case "hash consing canonicity" `Quick test_hash_consing_canonicity;
    Alcotest.test_case "xor identities" `Quick test_xor_identities;
    Alcotest.test_case "cofactor" `Quick test_cofactor;
    Alcotest.test_case "quantification" `Quick test_quantification;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "count sat" `Quick test_count_sat;
    Alcotest.test_case "probability" `Quick test_probability;
    Alcotest.test_case "pick sat" `Quick test_pick_sat;
    Alcotest.test_case "of_netlist adder" `Quick test_of_netlist_adder;
    Alcotest.test_case "xor chain size" `Quick test_bdd_size_xor_chain;
    Alcotest.test_case "size shared" `Quick test_size_shared;
    Alcotest.test_case "budget validation" `Quick test_budget_validation;
    Alcotest.test_case "budget trips, node count bounded" `Quick
      test_budget_trips_and_node_count;
    Alcotest.test_case "manager usable after budget trip" `Quick
      test_budget_manager_usable_after_trip;
    Alcotest.test_case "injected blowup" `Quick test_budget_injected_blowup;
    QCheck_alcotest.to_alcotest qcheck_ite_shannon;
  ]
