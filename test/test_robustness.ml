open Hlp_util

(* Guarded execution: typed errors, guards, fault injection, budgets, and
   the degradation chains. The property under test throughout: whatever is
   injected or exhausted, the pipeline returns a correct estimate or a
   typed [Err.t] — never an uncaught exception, never a silently wrong
   answer. *)

(* Every test leaves the global telemetry registry disabled and zeroed so
   the other suites are unaffected (same discipline as test_telemetry). *)
let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* CI runs this suite across a small matrix of fault seeds (HLP_FAULT_SEED)
   so the injected-fault schedules differ per job while each job stays
   fully deterministic. Unset (local runs), the offset is 0. *)
let seed_offset =
  match Option.bind (Sys.getenv_opt "HLP_FAULT_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 0

let err_class f =
  match f () with
  | _ -> None
  | exception Err.Error e -> Some (Err.class_name e)

let check_err expected what f =
  Alcotest.(check (option string)) what (Some expected) (err_class f)

(* --- Err: the taxonomy itself --- *)

let test_err_exit_codes () =
  let cases =
    [ (Err.Invalid_input { what = "x"; why = "y" }, "invalid-input", 65);
      (Err.Budget_exceeded { budget = "b"; limit = 1; used = 2 },
       "budget-exceeded", 66);
      (Err.Deadline_exceeded { limit_s = 1.0; elapsed_s = 2.0 },
       "deadline-exceeded", 67);
      (Err.Cancelled { where = "w" }, "cancelled", 68);
      (Err.Worker_failure { shard = 3; attempts = 2; why = "boom" },
       "worker-failure", 69);
      (Err.Overloaded { queue = "q"; budget = 4; pending = 9 },
       "overloaded", 70) ]
  in
  List.iter
    (fun (e, cls, code) ->
      Alcotest.(check string) "class" cls (Err.class_name e);
      Alcotest.(check int) ("exit code for " ^ cls) code (Err.exit_code e);
      Alcotest.(check bool)
        ("to_string non-empty for " ^ cls)
        true
        (String.length (Err.to_string e) > 0))
    cases

let test_err_protect () =
  (match Err.protect (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "ok passes through" 42 v
  | Error _ -> Alcotest.fail "unexpected error");
  (match Err.protect (fun () -> raise (Err.invalid_input ~what:"t" "bad")) with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error e -> Alcotest.(check string) "typed caught" "invalid-input" (Err.class_name e));
  (* protect catches exactly Err.Error: programming errors still escape *)
  Alcotest.check_raises "raw exceptions escape" Exit (fun () ->
      ignore (Err.protect (fun () -> raise Exit)))

(* --- Guard: deadlines and cancellation --- *)

let test_guard_invalid_deadline () =
  check_err "invalid-input" "negative deadline" (fun () ->
      Guard.create ~deadline_s:(-1.0) ());
  check_err "invalid-input" "nan deadline" (fun () ->
      Guard.create ~deadline_s:Float.nan ())

let test_guard_deadline_trips () =
  with_telemetry @@ fun () ->
  let g = Guard.create ~deadline_s:0.0 () in
  Alcotest.(check bool) "expired" true (Guard.expired g);
  check_err "deadline-exceeded" "check raises" (fun () -> Guard.check g);
  Alcotest.(check bool)
    "trip counted" true
    (Telemetry.count (Telemetry.counter "guard.deadline_trips") >= 1);
  (* unlimited never trips *)
  Guard.check Guard.unlimited;
  Alcotest.(check bool) "unlimited not expired" false (Guard.expired Guard.unlimited)

let test_guard_cancellation () =
  with_telemetry @@ fun () ->
  let tok = Guard.token ~name:"test" () in
  let g = Guard.create ~token:tok () in
  Guard.check g;
  Guard.cancel tok;
  Alcotest.(check bool) "token observed" true (Guard.is_cancelled tok);
  check_err "cancelled" "check raises" (fun () -> Guard.check g);
  Alcotest.(check bool)
    "trip counted" true
    (Telemetry.count (Telemetry.counter "guard.cancel_trips") >= 1)

let test_guard_run () =
  (match Guard.run Guard.unlimited (fun _ -> 7) with
  | Ok v -> Alcotest.(check int) "ok" 7 v
  | Error _ -> Alcotest.fail "unexpected error");
  match Guard.run (Guard.create ~deadline_s:0.0 ()) (fun g -> Guard.check g) with
  | Ok () -> Alcotest.fail "expected deadline error"
  | Error e ->
      Alcotest.(check string) "deadline as result" "deadline-exceeded"
        (Err.class_name e)

(* --- Faultinject: the harness itself --- *)

let test_faultinject_validation () =
  check_err "invalid-input" "rate > 1" (fun () ->
      Faultinject.configure ~rate:1.5 [ Faultinject.Gate_eval ]);
  check_err "invalid-input" "rate < 0" (fun () ->
      Faultinject.configure ~rate:(-0.1) [ Faultinject.Gate_eval ])

let test_faultinject_rates () =
  Faultinject.with_faults ~rate:0.0 [ Faultinject.Gate_eval ] (fun () ->
      for _ = 1 to 1000 do
        Alcotest.(check bool) "rate 0 never fires" false
          (Faultinject.fire Faultinject.Gate_eval)
      done);
  Faultinject.with_faults ~rate:1.0 [ Faultinject.Gate_eval ] (fun () ->
      for _ = 1 to 100 do
        Alcotest.(check bool) "rate 1 always fires" true
          (Faultinject.fire Faultinject.Gate_eval)
      done;
      Alcotest.(check int) "all firings counted" 100
        (Faultinject.fired Faultinject.Gate_eval);
      (* unarmed points are unaffected *)
      Alcotest.(check bool) "unarmed point silent" false
        (Faultinject.fire Faultinject.Domain_kill))

let test_faultinject_determinism () =
  let run () =
    Faultinject.with_faults ~seed:1 ~rate:0.3 [ Faultinject.Trace_sample ]
      (fun () ->
        for _ = 1 to 1000 do
          ignore (Faultinject.fire Faultinject.Trace_sample)
        done;
        Faultinject.fired Faultinject.Trace_sample)
  in
  let c1 = run () and c2 = run () in
  Alcotest.(check int) "same seed, same firing count" c1 c2;
  Alcotest.(check bool) "rate 0.3 fires roughly 300/1000" true
    (c1 > 200 && c1 < 400)

let test_faultinject_disarm () =
  Alcotest.(check bool) "disabled at start" false (Faultinject.enabled ());
  (try
     Faultinject.with_faults ~rate:1.0 [ Faultinject.Bdd_blowup ] (fun () ->
         Alcotest.(check bool) "armed inside" true
           (Faultinject.armed Faultinject.Bdd_blowup);
         raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "disarmed after exception" false (Faultinject.enabled ())

(* --- Parsim: containment, retries, clamping, degradation --- *)

let test_parsim_jobs_clamp () =
  with_telemetry @@ fun () ->
  let r = Hlp_sim.Parsim.map ~jobs:64 4 (fun i -> i * i) in
  Alcotest.(check (array int)) "result correct under clamp" [| 0; 1; 4; 9 |] r;
  Alcotest.(check bool)
    "clamp counted" true
    (Telemetry.count (Telemetry.counter "parsim.jobs_clamped") >= 1)

let test_parsim_map_validation () =
  check_err "invalid-input" "negative n" (fun () ->
      Hlp_sim.Parsim.map (-1) Fun.id);
  check_err "invalid-input" "negative retries" (fun () ->
      Hlp_sim.Parsim.map ~max_retries:(-1) 4 Fun.id)

let test_parsim_retry_recovers () =
  (* transient faults: each retry draws fresh fault decisions, so at a
     moderate rate the retried shards succeed and the map completes with
     the exact values a clean run would produce *)
  with_telemetry @@ fun () ->
  let n = 200 in
  let expected = Array.init n (fun i -> i * 3) in
  let r =
    Faultinject.with_faults ~seed:(5 + seed_offset) ~rate:0.2
      [ Faultinject.Domain_kill ]
      (fun () -> Hlp_sim.Parsim.map ~jobs:4 ~max_retries:8 n (fun i -> i * 3))
  in
  Alcotest.(check (array int)) "deterministic despite faults" expected r;
  Alcotest.(check bool)
    "failures counted" true
    (Telemetry.count (Telemetry.counter "parsim.worker_failures") >= 1);
  Alcotest.(check bool)
    "retries counted" true
    (Telemetry.count (Telemetry.counter "parsim.shard_retries") >= 1)

let test_parsim_persistent_failure () =
  (* a shard that fails deterministically exhausts its retries and surfaces
     as the typed worker failure naming the shard *)
  match
    Hlp_sim.Parsim.map ~jobs:2 ~max_retries:1 8 (fun i ->
        if i = 5 then failwith "persistent" else i)
  with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception Err.Error (Err.Worker_failure { shard; attempts; why }) ->
      Alcotest.(check int) "failing shard named" 5 shard;
      Alcotest.(check int) "attempts = max_retries + 1" 2 attempts;
      Alcotest.(check bool) "original exception kept" true
        (String.length why > 0)

let adder_trace ~width ~n seed =
  let net = Hlp_logic.Generators.adder_circuit width in
  let nin = Array.length net.Hlp_logic.Netlist.inputs in
  let rng = Prng.create seed in
  let trace = Hlp_sim.Streams.uniform rng ~width:nin ~n in
  (net, fun i -> Array.init nin (fun b -> Bits.bit trace.(i) b))

let test_replay_guarded_degrades () =
  (* gate-eval faults at rate 1.0 kill every engine's simulation; the chain
     must walk Parallel -> Bitparallel -> Scalar and surface a typed error,
     not an injected Failure *)
  with_telemetry @@ fun () ->
  let net, vector = adder_trace ~width:4 ~n:100 11 in
  (match
     Faultinject.with_faults ~rate:1.0 [ Faultinject.Gate_eval ] (fun () ->
         Hlp_sim.Parsim.replay_guarded ~jobs:2 ~max_retries:0
           ~engine:Hlp_sim.Engine.Parallel net ~vector ~n:100)
   with
  | Ok _ -> Alcotest.fail "all engines were killed; expected an error"
  | Error e ->
      Alcotest.(check string) "typed worker failure" "worker-failure"
        (Err.class_name e));
  Alcotest.(check int)
    "two degradation hops counted" 2
    (Telemetry.count (Telemetry.counter "parsim.engine_fallbacks"))

let test_replay_guarded_preserves_results () =
  (* faults only on the parallel path: degradation (or retry) must yield
     the same per-transition capacitances a clean run produces *)
  let net, vector = adder_trace ~width:4 ~n:200 13 in
  let clean =
    Hlp_sim.Parsim.replay ~engine:Hlp_sim.Engine.Bitparallel net ~vector ~n:200
  in
  let faulty =
    Faultinject.with_faults ~seed:3 ~rate:0.3 [ Faultinject.Domain_kill ]
      (fun () ->
        Hlp_sim.Parsim.replay_guarded ~jobs:4 ~max_retries:4
          ~engine:Hlp_sim.Engine.Parallel net ~vector ~n:200)
  in
  match faulty with
  | Error e -> Alcotest.fail ("unexpected error: " ^ Err.to_string e)
  | Ok d ->
      Array.iteri
        (fun i c ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "transition %d" i)
            c
            d.Hlp_sim.Parsim.value.Hlp_sim.Parsim.transition_caps.(i))
        clean.Hlp_sim.Parsim.transition_caps

let test_replay_guarded_propagates_guard_trips () =
  (* a deadline must never be degraded past: the chain stops immediately *)
  let net, vector = adder_trace ~width:4 ~n:50 17 in
  match
    Hlp_sim.Parsim.replay_guarded
      ~guard:(Guard.create ~deadline_s:0.0 ())
      ~engine:Hlp_sim.Engine.Parallel net ~vector ~n:50
  with
  | Ok _ -> Alcotest.fail "expected deadline error"
  | Error e ->
      Alcotest.(check string) "deadline propagates" "deadline-exceeded"
        (Err.class_name e)

(* --- Probprop: symbolic exactness, budgets, the guarded chain --- *)

let test_symbolic_exact_on_reconvergence () =
  (* comparator has reconvergent fanout: propagate's independence
     assumption is biased there, the BDD path is exact. Verify symbolic
     probabilities against brute-force truth-table enumeration. *)
  let net = Hlp_logic.Generators.comparator_circuit 3 in
  let nin = Array.length net.Hlp_logic.Netlist.inputs in
  let stats = Hlp_power.Probprop.symbolic net in
  let sim = Hlp_sim.Funcsim.create net in
  let count = Array.make (Array.length stats.Hlp_power.Probprop.prob) 0 in
  let total = 1 lsl nin in
  for v = 0 to total - 1 do
    Hlp_sim.Funcsim.step sim (Array.init nin (fun b -> Bits.bit v b));
    Array.iteri
      (fun node _ ->
        if Hlp_sim.Funcsim.value sim node then count.(node) <- count.(node) + 1)
      count
  done;
  Array.iteri
    (fun node p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "node %d probability" node)
        (float_of_int count.(node) /. float_of_int total)
        p)
    stats.Hlp_power.Probprop.prob

let test_symbolic_budget_trips () =
  let net = Hlp_logic.Generators.multiplier_circuit 6 in
  check_err "budget-exceeded" "tiny node limit trips" (fun () ->
      Hlp_power.Probprop.symbolic ~node_limit:20 net)

let test_estimate_guarded_symbolic_path () =
  with_telemetry @@ fun () ->
  let net = Hlp_logic.Generators.adder_circuit 4 in
  match Hlp_power.Probprop.estimate_guarded net with
  | Error e -> Alcotest.fail ("unexpected error: " ^ Err.to_string e)
  | Ok g ->
      Alcotest.(check bool) "symbolic estimator used" true
        (g.Hlp_power.Probprop.estimator = Hlp_power.Probprop.Symbolic);
      Alcotest.(check bool) "no fallback" false g.Hlp_power.Probprop.symbolic_fallback;
      Alcotest.(check bool) "positive capacitance" true
        (g.Hlp_power.Probprop.capacitance > 0.0);
      Alcotest.(check int)
        "symbolic run counted" 1
        (Telemetry.count (Telemetry.counter "probprop.symbolic_runs"))

let test_estimate_guarded_falls_back_to_sampling () =
  with_telemetry @@ fun () ->
  let net = Hlp_logic.Generators.adder_circuit 4 in
  (* the exact answer, for the CI-consistency assertion *)
  let exact =
    let stats = Hlp_power.Probprop.symbolic net in
    Hlp_power.Probprop.estimate_capacitance net stats
  in
  match Hlp_power.Probprop.estimate_guarded ~node_limit:10 ~seed:7 net with
  | Error e -> Alcotest.fail ("unexpected error: " ^ Err.to_string e)
  | Ok g -> (
      Alcotest.(check bool) "fell back" true g.Hlp_power.Probprop.symbolic_fallback;
      Alcotest.(check bool)
        "fallback counted" true
        (Telemetry.count (Telemetry.counter "probprop.symbolic_fallbacks") >= 1);
      match g.Hlp_power.Probprop.estimator with
      | Hlp_power.Probprop.Symbolic -> Alcotest.fail "should have sampled"
      | Hlp_power.Probprop.Monte_carlo mc ->
          (* the sampled estimate must be CI-consistent with the exact
             answer: within 4 half-widths (the t interval is 95%) *)
          Alcotest.(check bool)
            (Printf.sprintf "estimate %.2f within CI of exact %.2f (+/- %.2f)"
               mc.Hlp_power.Probprop.estimate exact
               mc.Hlp_power.Probprop.half_interval)
            true
            (Float.abs (mc.Hlp_power.Probprop.estimate -. exact)
            <= 4.0 *. mc.Hlp_power.Probprop.half_interval))

let test_estimate_guarded_deadline () =
  let net = Hlp_logic.Generators.multiplier_circuit 8 in
  match
    Hlp_power.Probprop.estimate_guarded
      ~guard:(Guard.create ~deadline_s:0.0 ())
      net
  with
  | Ok _ -> Alcotest.fail "expected deadline error"
  | Error e ->
      Alcotest.(check string) "deadline surfaces" "deadline-exceeded"
        (Err.class_name e)

let test_monte_carlo_validation () =
  let net = Hlp_logic.Generators.adder_circuit 4 in
  check_err "invalid-input" "batch < 2" (fun () ->
      Hlp_power.Probprop.monte_carlo ~batch:1 net)

(* --- Sampling: input validation and poisoned samples --- *)

let test_sampling_validation () =
  check_err "invalid-input" "length mismatch" (fun () ->
      Hlp_power.Sampling.of_arrays ~macro_values:[| 1.0 |]
        ~gate_values:[| 1.0; 2.0 |]);
  check_err "invalid-input" "empty" (fun () ->
      Hlp_power.Sampling.of_arrays ~macro_values:[||] ~gate_values:[||]);
  check_err "invalid-input" "poisoned value" (fun () ->
      Hlp_power.Sampling.of_arrays
        ~macro_values:[| 1.0; Float.nan |]
        ~gate_values:[| 1.0; 2.0 |]);
  (match
     Hlp_power.Sampling.of_arrays_checked ~macro_values:[| 1.0 |]
       ~gate_values:[| 1.0 |]
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "valid arrays rejected");
  match
    Hlp_power.Sampling.of_arrays_checked ~macro_values:[||] ~gate_values:[||]
  with
  | Ok _ -> Alcotest.fail "empty accepted"
  | Error e ->
      Alcotest.(check string) "checked variant" "invalid-input" (Err.class_name e)

let sampling_dut n =
  { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit n;
    widths = [ n; n ] }

let sampling_model dut =
  let obs =
    List.map (Hlp_power.Macromodel.observe dut)
      (Hlp_power.Macromodel.training_streams ~n:64 dut)
  in
  Hlp_power.Macromodel.fit Hlp_power.Macromodel.Pfa dut obs

let test_sampling_prepare_validation () =
  let dut = sampling_dut 4 in
  let model = sampling_model dut in
  check_err "invalid-input" "no traces" (fun () ->
      Hlp_power.Sampling.prepare model dut []);
  check_err "invalid-input" "unequal streams" (fun () ->
      Hlp_power.Sampling.prepare model dut [ [| 1; 2; 3 |]; [| 1; 2 |] ]);
  check_err "invalid-input" "one cycle" (fun () ->
      Hlp_power.Sampling.prepare model dut [ [| 1 |]; [| 2 |] ]);
  check_err "invalid-input" "stream count mismatch" (fun () ->
      Hlp_power.Sampling.prepare model dut [ [| 1; 2; 3 |] ])

let test_sampling_poisoned_trace () =
  (* a poisoned macro-model evaluation must surface at assembly as a typed
     error, not as a NaN estimate downstream *)
  let dut = sampling_dut 4 in
  let model = sampling_model dut in
  let rng = Prng.create 23 in
  let traces =
    [ Array.init 100 (fun _ -> Prng.int rng 16);
      Array.init 100 (fun _ -> Prng.int rng 16) ]
  in
  check_err "invalid-input" "poison detected" (fun () ->
      Faultinject.with_faults ~rate:0.05 [ Faultinject.Trace_sample ] (fun () ->
          Hlp_power.Sampling.prepare model dut traces))

(* --- the end-to-end property, randomized over fault scenarios --- *)

let qcheck_pipeline_never_crashes =
  (* Under any injected fault mix, [estimate_guarded] returns either a
     CI-consistent estimate or a typed error — an uncaught exception or an
     implausible estimate fails the property. *)
  let net = Hlp_logic.Generators.adder_circuit 4 in
  let exact =
    lazy
      (let stats = Hlp_power.Probprop.symbolic net in
       Hlp_power.Probprop.estimate_capacitance net stats)
  in
  QCheck.Test.make ~name:"faulted pipeline: typed error or consistent estimate"
    ~count:25
    QCheck.(pair (int_bound 10_000) (int_bound 7))
    (fun (seed, mask) ->
      let points =
        List.filteri
          (fun i _ -> mask land (1 lsl i) <> 0)
          [ Faultinject.Gate_eval; Faultinject.Domain_kill;
            Faultinject.Bdd_blowup ]
      in
      let result =
        Faultinject.with_faults ~seed:(seed + seed_offset) ~rate:0.1 points
          (fun () ->
            Hlp_power.Probprop.estimate_guarded ~seed ~node_limit:5000
              ~engine:Hlp_sim.Engine.Parallel ~jobs:2 ~max_retries:3 net)
      in
      match result with
      | Error _ -> true (* typed error: acceptable outcome *)
      | Ok g -> (
          match g.Hlp_power.Probprop.estimator with
          | Hlp_power.Probprop.Symbolic ->
              Float.abs (g.Hlp_power.Probprop.capacitance -. Lazy.force exact)
              < 1e-9
          | Hlp_power.Probprop.Monte_carlo mc ->
              Float.abs (mc.Hlp_power.Probprop.estimate -. Lazy.force exact)
              <= 4.0 *. mc.Hlp_power.Probprop.half_interval))

let qcheck_map_deterministic_under_faults =
  QCheck.Test.make
    ~name:"Parsim.map under domain kills: correct values or typed error"
    ~count:25
    QCheck.(pair (int_bound 10_000) (int_range 1 60))
    (fun (seed, n) ->
      match
        Faultinject.with_faults ~seed:(seed + seed_offset) ~rate:0.3
          [ Faultinject.Domain_kill ]
          (fun () -> Hlp_sim.Parsim.map ~jobs:3 ~max_retries:4 n (fun i -> i + 1))
      with
      | r -> Array.to_list r = List.init n (fun i -> i + 1)
      | exception Err.Error (Err.Worker_failure _) -> true)

let suite =
  [
    Alcotest.test_case "err exit codes" `Quick test_err_exit_codes;
    Alcotest.test_case "err protect" `Quick test_err_protect;
    Alcotest.test_case "guard invalid deadline" `Quick test_guard_invalid_deadline;
    Alcotest.test_case "guard deadline trips" `Quick test_guard_deadline_trips;
    Alcotest.test_case "guard cancellation" `Quick test_guard_cancellation;
    Alcotest.test_case "guard run" `Quick test_guard_run;
    Alcotest.test_case "faultinject validation" `Quick test_faultinject_validation;
    Alcotest.test_case "faultinject rates" `Quick test_faultinject_rates;
    Alcotest.test_case "faultinject determinism" `Quick test_faultinject_determinism;
    Alcotest.test_case "faultinject disarm" `Quick test_faultinject_disarm;
    Alcotest.test_case "parsim jobs clamp" `Quick test_parsim_jobs_clamp;
    Alcotest.test_case "parsim map validation" `Quick test_parsim_map_validation;
    Alcotest.test_case "parsim retry recovers" `Quick test_parsim_retry_recovers;
    Alcotest.test_case "parsim persistent failure" `Quick test_parsim_persistent_failure;
    Alcotest.test_case "replay_guarded degrades" `Quick test_replay_guarded_degrades;
    Alcotest.test_case "replay_guarded preserves results" `Quick
      test_replay_guarded_preserves_results;
    Alcotest.test_case "replay_guarded propagates guard trips" `Quick
      test_replay_guarded_propagates_guard_trips;
    Alcotest.test_case "symbolic exact on reconvergence" `Quick
      test_symbolic_exact_on_reconvergence;
    Alcotest.test_case "symbolic budget trips" `Quick test_symbolic_budget_trips;
    Alcotest.test_case "estimate_guarded symbolic path" `Quick
      test_estimate_guarded_symbolic_path;
    Alcotest.test_case "estimate_guarded falls back to sampling" `Quick
      test_estimate_guarded_falls_back_to_sampling;
    Alcotest.test_case "estimate_guarded deadline" `Quick test_estimate_guarded_deadline;
    Alcotest.test_case "monte carlo validation" `Quick test_monte_carlo_validation;
    Alcotest.test_case "sampling validation" `Quick test_sampling_validation;
    Alcotest.test_case "sampling prepare validation" `Quick
      test_sampling_prepare_validation;
    Alcotest.test_case "sampling poisoned trace" `Quick test_sampling_poisoned_trace;
    QCheck_alcotest.to_alcotest qcheck_pipeline_never_crashes;
    QCheck_alcotest.to_alcotest qcheck_map_deterministic_under_faults;
  ]
