(* Differential validation of the bit-parallel + multicore simulation
   engine:

   - Bitsim vs 63 independent Funcsim replicas: toggle counts, high counts,
     per-lane and total switched capacitance must match exactly (qcheck
     property over generated netlists, plus a sequential-circuit case);
   - Parsim determinism: the Parallel engine must produce bit-identical
     results with 1, 2, and 4 domains (the reduction-order contract);
   - regression pins: Sampling.sampler / Sampling.adaptive on a fixed
     seed/DUT, so an engine swap cannot silently shift estimator results. *)

open Hlp_logic
open Hlp_sim

let lanes = Bitsim.lanes

(* Drive a Bitsim and 63 Funcsim replicas with identical per-lane vectors
   and return both. *)
let run_differential net ~steps ~seed =
  let nin = Array.length net.Netlist.inputs in
  let rng = Hlp_util.Prng.create seed in
  let bit = Bitsim.create ~track_lanes:true net in
  let refs = Array.init lanes (fun _ -> Funcsim.create net) in
  for _ = 1 to steps do
    let vecs =
      Array.init lanes (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng))
    in
    Array.iteri (fun j sim -> Funcsim.step sim vecs.(j)) refs;
    Bitsim.step bit (Bitsim.pack_lanes vecs)
  done;
  (bit, refs)

let agree net ~steps ~seed =
  let bit, refs = run_differential net ~steps ~seed in
  let n = Netlist.num_nodes net in
  let sum_counts get =
    let acc = Array.make n 0 in
    Array.iter
      (fun sim -> Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) (get sim))
      refs;
    acc
  in
  let toggles_ok = Bitsim.toggle_counts bit = sum_counts Funcsim.toggle_counts in
  let highs_ok = Bitsim.high_counts bit = sum_counts Funcsim.high_counts in
  (* total switched capacitance: both sides derived from the (equal) toggle
     counts with the same summation order -> exactly equal *)
  let caps = Netlist.node_capacitance net in
  let expected = ref 0.0 in
  Array.iteri
    (fun i t -> expected := !expected +. (caps.(i) *. float_of_int t))
    (sum_counts Funcsim.toggle_counts);
  let switched_ok = Bitsim.switched_capacitance bit = !expected in
  (* per-lane accumulators add the same capacitances in the same order as
     the corresponding scalar replica -> exactly equal *)
  let lane_caps = Bitsim.lane_switched_capacitance bit in
  let lanes_ok =
    Array.for_all
      (fun j -> lane_caps.(j) = Funcsim.switched_capacitance refs.(j))
      (Array.init lanes (fun j -> j))
  in
  toggles_ok && highs_ok && switched_ok && lanes_ok

(* qcheck netlist generator: adders, ALUs, and random logic of varying
   sizes, per the macro-modeling population. *)
let gen_netlist =
  QCheck.Gen.(
    oneof
      [
        map (fun w -> ("adder", Generators.adder_circuit (2 + w))) (int_bound 6);
        map (fun w -> ("alu", Generators.alu_circuit (2 + w))) (int_bound 3);
        map
          (fun (seed, (nin, gates)) ->
            ( "random",
              Generators.random_logic
                (Hlp_util.Prng.create (1 + seed))
                ~inputs:(3 + nin) ~outputs:3 ~gates:(20 + gates) ))
          (pair (int_bound 10_000) (pair (int_bound 5) (int_bound 60)));
      ])

let arb_netlist =
  QCheck.make ~print:(fun (name, net) -> name ^ ": " ^ Netlist.stats_string net)
    gen_netlist

let qcheck_differential =
  QCheck.Test.make ~count:60
    ~name:"bitsim matches 63 funcsim replicas (toggles, highs, switched cap)"
    (QCheck.pair arb_netlist QCheck.small_nat)
    (fun ((_, net), seed) -> agree net ~steps:5 ~seed:(seed + 1))

(* A sequential circuit (4-bit counter with enable) exercises the flip-flop
   latch path and the reset/first-step handling. *)
let sequential_net () =
  let b = Netlist.Builder.create () in
  let en = Netlist.Builder.input ~name:"en" b in
  let qarr = Array.make 4 0 in
  let rec build i carry =
    if i < 4 then begin
      ignore
        (Netlist.Builder.dff_feedback b (fun q ->
             qarr.(i) <- q;
             Netlist.Builder.xor_ b q carry));
      build (i + 1) (Netlist.Builder.and_ b [ qarr.(i); carry ])
    end
  in
  build 0 en;
  Array.iteri (fun i q -> Netlist.Builder.output b (Printf.sprintf "q%d" i) q) qarr;
  let net = Netlist.Builder.finish b in
  Netlist.validate net;
  net

let test_differential_sequential () =
  Alcotest.(check bool)
    "bitsim matches funcsim replicas on a sequential circuit" true
    (agree (sequential_net ()) ~steps:50 ~seed:7)

let test_output_words () =
  (* bit-parallel adder: every lane must compute its own sum *)
  let n = 8 in
  let net = Generators.adder_circuit n in
  let rng = Hlp_util.Prng.create 3 in
  let pairs = Array.init lanes (fun _ -> (Hlp_util.Prng.int rng 256, Hlp_util.Prng.int rng 256)) in
  let vecs =
    Array.map
      (fun (a, b) ->
        Array.init (2 * n) (fun i ->
            if i < n then Hlp_util.Bits.bit a i else Hlp_util.Bits.bit b (i - n)))
      pairs
  in
  let sim = Bitsim.create net in
  Bitsim.step sim (Bitsim.pack_lanes vecs);
  let outs = Bitsim.output_words sim in
  (* outputs are s0..s7 then carry (output index order); low 8 bits = sum *)
  Array.iteri
    (fun j (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "lane %d sum" j)
        ((a + b) land 255)
        (outs.(j) land 255))
    pairs

(* --- Parsim determinism: bit-identical across 1, 2, and 4 domains --- *)

let test_replay_deterministic_in_jobs () =
  let net = Generators.multiplier_circuit 6 in
  let nin = Array.length net.Netlist.inputs in
  let rng = Hlp_util.Prng.create 19 in
  let trace = Streams.uniform rng ~width:nin ~n:500 in
  let vector i = Array.init nin (fun b -> Hlp_util.Bits.bit trace.(i) b) in
  let run jobs = Parsim.replay ~jobs ~engine:Engine.Parallel net ~vector ~n:500 in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  Alcotest.(check bool) "jobs=2 identical to jobs=1" true (r1 = r2);
  Alcotest.(check bool) "jobs=4 identical to jobs=1" true (r1 = r4);
  (* and identical to the single-domain bit-parallel engine *)
  let rb = Parsim.replay ~engine:Engine.Bitparallel net ~vector ~n:500 in
  Alcotest.(check bool) "parallel identical to bitparallel" true (r1 = rb);
  (* scalar agrees exactly on outputs and within round-off on capacitance *)
  let rs = Parsim.replay ~engine:Engine.Scalar net ~vector ~n:500 in
  Alcotest.(check bool) "out words match scalar" true
    (rs.Parsim.out_words = r1.Parsim.out_words);
  let max_rel = ref 0.0 in
  Array.iteri
    (fun i v ->
      max_rel :=
        max !max_rel
          (Hlp_util.Stats.relative_error ~actual:v
             ~estimate:r1.Parsim.transition_caps.(i)))
    rs.Parsim.transition_caps;
  Alcotest.(check bool) "transition caps match scalar to round-off" true
    (!max_rel < 1e-9)

let test_monte_carlo_deterministic_in_jobs () =
  let net = Generators.alu_circuit 6 in
  let run jobs =
    Hlp_power.Probprop.monte_carlo ~seed:5 ~engine:Hlp_sim.Engine.Parallel ~jobs net
  in
  let m1 = run 1 and m2 = run 2 and m4 = run 4 in
  Alcotest.(check (float 0.0)) "estimate jobs=2" m1.Hlp_power.Probprop.estimate
    m2.Hlp_power.Probprop.estimate;
  Alcotest.(check (float 0.0)) "estimate jobs=4" m1.Hlp_power.Probprop.estimate
    m4.Hlp_power.Probprop.estimate;
  Alcotest.(check int) "cycles jobs=2" m1.Hlp_power.Probprop.cycles_used
    m2.Hlp_power.Probprop.cycles_used;
  Alcotest.(check int) "cycles jobs=4" m1.Hlp_power.Probprop.cycles_used
    m4.Hlp_power.Probprop.cycles_used

let test_monte_carlo_engines_agree () =
  (* different random streams, same physics: engines must agree within the
     combined confidence intervals (generous 15% band) *)
  let net = Generators.adder_circuit 8 in
  let scalar = Hlp_power.Probprop.monte_carlo ~seed:11 net in
  let bitpar =
    Hlp_power.Probprop.monte_carlo ~seed:11 ~engine:Hlp_sim.Engine.Bitparallel net
  in
  Alcotest.(check bool) "bitparallel estimate near scalar" true
    (Hlp_util.Stats.relative_error ~actual:scalar.Hlp_power.Probprop.estimate
       ~estimate:bitpar.Hlp_power.Probprop.estimate
    < 0.15)

(* --- regression pins: the engine swap must not move the estimators --- *)

let pinned_cosim engine =
  let dut =
    { Hlp_power.Macromodel.net = Hlp_logic.Generators.adder_circuit 8; widths = [ 8; 8 ] }
  in
  let rng = Hlp_util.Prng.create 123 in
  let training =
    [ [ Streams.uniform rng ~width:8 ~n:300; Streams.uniform rng ~width:8 ~n:300 ] ]
  in
  let obs = List.map (Hlp_power.Macromodel.observe dut) training in
  let model = Hlp_power.Macromodel.fit Hlp_power.Macromodel.Bitwise dut obs in
  let traces =
    [ Streams.uniform rng ~width:8 ~n:2000; Streams.uniform rng ~width:8 ~n:2000 ]
  in
  Hlp_power.Sampling.prepare ~engine model dut traces

let check_rel name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.9g within 1e-6 of pinned %.9g" name actual expected)
    true
    (Hlp_util.Stats.relative_error ~actual:expected ~estimate:actual < 1e-6)

(* Pinned against the seed (scalar) implementation on the fixed DUT above. *)
let pinned_sampler = 93.912285579
let pinned_adaptive = 98.786161983
let pinned_gate_reference = 95.413506753

let test_sampling_regression_scalar () =
  let t = pinned_cosim Hlp_sim.Engine.Scalar in
  check_rel "gate reference" pinned_gate_reference (Hlp_power.Sampling.gate_reference t);
  let s = Hlp_power.Sampling.sampler ~seed:77 t in
  check_rel "sampler" pinned_sampler s.Hlp_power.Sampling.value;
  let a = Hlp_power.Sampling.adaptive ~seed:99 t in
  check_rel "adaptive" pinned_adaptive a.Hlp_power.Sampling.value

let test_sampling_regression_engines () =
  let ts = pinned_cosim Hlp_sim.Engine.Scalar in
  let tb = pinned_cosim Hlp_sim.Engine.Bitparallel in
  let tp = pinned_cosim Hlp_sim.Engine.Parallel in
  List.iter
    (fun (name, t) ->
      (* sampler and census read only macro evaluations, which are derived
         from engine-exact output words: bit-identical across engines *)
      Alcotest.(check (float 0.0))
        (name ^ " sampler bit-identical")
        (Hlp_power.Sampling.sampler ~seed:77 ts).Hlp_power.Sampling.value
        (Hlp_power.Sampling.sampler ~seed:77 t).Hlp_power.Sampling.value;
      Alcotest.(check (float 0.0))
        (name ^ " census bit-identical")
        (Hlp_power.Sampling.census ts).Hlp_power.Sampling.value
        (Hlp_power.Sampling.census t).Hlp_power.Sampling.value;
      (* adaptive touches gate-level floats: equal up to round-off *)
      check_rel (name ^ " adaptive")
        (Hlp_power.Sampling.adaptive ~seed:99 ts).Hlp_power.Sampling.value
        (Hlp_power.Sampling.adaptive ~seed:99 t).Hlp_power.Sampling.value;
      check_rel (name ^ " gate reference")
        (Hlp_power.Sampling.gate_reference ts)
        (Hlp_power.Sampling.gate_reference t))
    [ ("bitparallel", tb); ("parallel", tp) ]

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_differential;
    Alcotest.test_case "bitsim differential on sequential circuit" `Quick
      test_differential_sequential;
    Alcotest.test_case "bitsim per-lane output words" `Quick test_output_words;
    Alcotest.test_case "parsim replay deterministic in jobs" `Quick
      test_replay_deterministic_in_jobs;
    Alcotest.test_case "parsim monte carlo deterministic in jobs" `Quick
      test_monte_carlo_deterministic_in_jobs;
    Alcotest.test_case "monte carlo engines agree" `Quick
      test_monte_carlo_engines_agree;
    Alcotest.test_case "sampling regression pins (scalar)" `Quick
      test_sampling_regression_scalar;
    Alcotest.test_case "sampling regression pins (engines)" `Quick
      test_sampling_regression_engines;
  ]
