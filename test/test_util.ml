open Hlp_util

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_ranges () =
  let r = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int r 7 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 7);
    let f = Prng.float r 3.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 3.0)
  done

let test_prng_uniformity () =
  let r = Prng.create 7 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket near 10%" true (frac > 0.08 && frac < 0.12))
    counts

let test_prng_bernoulli () =
  let r = Prng.create 3 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bernoulli r 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p=0.3" true (abs_float (frac -. 0.3) < 0.02)

let test_prng_gaussian () =
  let r = Prng.create 11 in
  let xs = Array.init 20_000 (fun _ -> Prng.gaussian r ~mu:2.0 ~sigma:3.0) in
  Alcotest.(check bool) "mean" true (abs_float (Stats.mean xs -. 2.0) < 0.1);
  Alcotest.(check bool) "stddev" true (abs_float (Stats.stddev xs -. 3.0) < 0.1)

let test_prng_exponential () =
  let r = Prng.create 13 in
  let xs = Array.init 20_000 (fun _ -> Prng.exponential r ~mean:5.0) in
  Alcotest.(check bool) "mean near 5" true (abs_float (Stats.mean xs -. 5.0) < 0.2)

let test_prng_split_independent () =
  let a = Prng.create 42 in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_prng_weighted () =
  let r = Prng.create 17 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 30_000 do
    let v = Prng.pick_weighted r [ (1.0, "a"); (2.0, "b"); (7.0, "c") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let frac k = float_of_int (Hashtbl.find counts k) /. 30_000.0 in
  Alcotest.(check bool) "a ~ 0.1" true (abs_float (frac "a" -. 0.1) < 0.02);
  Alcotest.(check bool) "c ~ 0.7" true (abs_float (frac "c" -. 0.7) < 0.02)

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "variance" (5.0 /. 3.0) (Stats.variance a);
  check_float "median" 2.5 (Stats.median a);
  check_float "min" 1.0 (Stats.minimum a);
  check_float "max" 4.0 (Stats.maximum a)

let test_stats_relative_error () =
  check_float "plain" 0.1 (Stats.relative_error ~actual:10.0 ~estimate:11.0);
  check_float "zero-zero" 0.0 (Stats.relative_error ~actual:0.0 ~estimate:0.0)

let test_stats_correlation () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = Array.map (fun v -> (2.0 *. v) +. 1.0 ) x in
  check_float ~eps:1e-9 "perfect corr" 1.0 (Stats.correlation x y);
  let yneg = Array.map (fun v -> -.v) x in
  check_float ~eps:1e-9 "anti corr" (-1.0) (Stats.correlation x yneg)

let test_stats_linreg () =
  let x = [| 0.0; 1.0; 2.0; 3.0 |] in
  let y = Array.map (fun v -> (3.0 *. v) -. 1.0) x in
  let { Stats.slope; intercept; r2 } = Stats.linear_regression ~x ~y in
  check_float ~eps:1e-9 "slope" 3.0 slope;
  check_float ~eps:1e-9 "intercept" (-1.0) intercept;
  check_float ~eps:1e-9 "r2" 1.0 r2

let test_stats_ratio_estimator () =
  (* y = 2x exactly: ratio estimator should recover 2 * population_x *)
  let x = [| 1.0; 2.0; 5.0 |] in
  let y = Array.map (fun v -> 2.0 *. v) x in
  check_float "ratio" 200.0 (Stats.ratio_estimator ~y ~x ~population_x:100.0)

let test_stats_percentile () =
  let a = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "p100 = max" 5.0 (Stats.percentile a 100.0);
  check_float "p20 = min" 1.0 (Stats.percentile a 20.0)

let test_stats_percentile_extremes () =
  let a = [| 9.0; 2.0; 7.0 |] in
  check_float "p0 = min" 2.0 (Stats.percentile a 0.0);
  check_float "p100 = max" 9.0 (Stats.percentile a 100.0);
  check_float "singleton p0" 4.0 (Stats.percentile [| 4.0 |] 0.0);
  check_float "singleton p100" 4.0 (Stats.percentile [| 4.0 |] 100.0)

let test_stats_histogram_degenerate () =
  (* all samples equal (hi = lo): everything lands in the first bin *)
  let h = Stats.histogram ~bins:4 (Array.make 6 3.5) in
  Alcotest.(check int) "bins" 4 (Array.length h);
  check_float "first edge" 3.5 (fst h.(0));
  Alcotest.(check int) "all in first bin" 6 (snd h.(0));
  Alcotest.(check int) "rest empty" 0 (snd h.(1) + snd h.(2) + snd h.(3))

let test_stats_single_element () =
  check_float "variance of 1" 0.0 (Stats.variance [| 42.0 |]);
  let lo, hi = Stats.confidence_interval_95 [| 42.0 |] in
  check_float "ci95 lo" 42.0 lo;
  check_float "ci95 hi" 42.0 hi;
  (* a one-element t-interval would need df = 0: rejected, not silently wrong *)
  Alcotest.check_raises "df 0"
    (Invalid_argument "Stats.confidence_interval: df must be >= 1") (fun () ->
      ignore (Stats.confidence_interval ~level:0.95 ~df:0 [| 42.0 |]))

let test_stats_correlation_constant () =
  let x = [| 1.0; 2.0; 3.0 |] in
  check_float "constant right" 0.0 (Stats.correlation x (Array.make 3 7.0));
  check_float "constant left" 0.0 (Stats.correlation (Array.make 3 7.0) x)

let test_stats_t_quantile () =
  (* pinned against standard t tables *)
  check_float ~eps:5e-4 "df1 95" 12.706 (Stats.t_quantile ~level:0.95 ~df:1);
  check_float ~eps:5e-4 "df2 95" 4.303 (Stats.t_quantile ~level:0.95 ~df:2);
  check_float ~eps:5e-4 "df10 95" 2.228 (Stats.t_quantile ~level:0.95 ~df:10);
  check_float ~eps:2e-2 "df35 interpolated" 2.030 (Stats.t_quantile ~level:0.95 ~df:35);
  check_float ~eps:2e-3 "df1000 ~ z" 1.962 (Stats.t_quantile ~level:0.95 ~df:1000);
  check_float ~eps:5e-4 "df5 99" 4.032 (Stats.t_quantile ~level:0.99 ~df:5);
  check_float ~eps:5e-4 "df5 90" 2.015 (Stats.t_quantile ~level:0.90 ~df:5);
  Alcotest.check_raises "df 0"
    (Invalid_argument "Stats.t_quantile: df must be >= 1") (fun () ->
      ignore (Stats.t_quantile ~level:0.95 ~df:0));
  Alcotest.check_raises "bad level"
    (Invalid_argument
       "Stats.t_quantile: unsupported level 0.8 (use 0.90, 0.95, 0.99)")
    (fun () -> ignore (Stats.t_quantile ~level:0.80 ~df:5))

let test_stats_t_interval_wider_than_z () =
  (* the whole point of the Student-t correction: at small n the interval
     must be wider than the normal approximation, and converge to it *)
  let a = [| 10.0; 12.0; 14.0 |] in
  let zlo, zhi = Stats.confidence_interval_95 a in
  let tlo, thi = Stats.confidence_interval ~level:0.95 ~df:2 a in
  Alcotest.(check bool) "t wider at df 2" true (thi -. tlo > zhi -. zlo);
  check_float ~eps:1e-9 "same center" ((zlo +. zhi) /. 2.0) ((tlo +. thi) /. 2.0);
  (* width ratio = t/z = 4.303 / 1.96 *)
  check_float ~eps:1e-3 "ratio 4.303/1.96" (4.303 /. 1.96)
    ((thi -. tlo) /. (zhi -. zlo))

let test_stats_ratio_estimator_zero_sample () =
  (* sampled auxiliary values all zero: the ratio is undefined; the
     estimator must return the census fallback, not a spurious 0 *)
  check_float "fallback" 100.0
    (Stats.ratio_estimator ~y:[| 1.0; 2.0 |] ~x:[| 0.0; 0.0 |] ~population_x:100.0)

let test_linalg_solve () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let b = [| 5.0; 10.0 |] in
  let x = Linalg.solve a b in
  check_float ~eps:1e-9 "x0" 1.0 x.(0);
  check_float ~eps:1e-9 "x1" 3.0 x.(1)

let test_linalg_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix")
    (fun () -> ignore (Linalg.solve a [| 1.0; 2.0 |]))

let test_linalg_least_squares () =
  (* exact linear model y = 3 a + 2 b recovered from 5 rows *)
  let x =
    [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |]
  in
  let y = Array.map (fun row -> (3.0 *. row.(0)) +. (2.0 *. row.(1))) x in
  let beta = Linalg.least_squares x y in
  check_float ~eps:1e-4 "beta0" 3.0 beta.(0);
  check_float ~eps:1e-4 "beta1" 2.0 beta.(1);
  check_float ~eps:1e-6 "r2" 1.0 (Linalg.r_squared x y beta)

let test_linalg_nonneg () =
  (* y depends negatively on column 1; nonneg fit must zero it out *)
  let x = [| [| 1.0; 1.0 |]; [| 2.0; 0.0 |]; [| 3.0; 2.0 |]; [| 4.0; 1.0 |] |] in
  let y = Array.map (fun row -> (2.0 *. row.(0)) -. (0.5 *. row.(1))) x in
  let beta = Linalg.least_squares_nonneg x y in
  Alcotest.(check bool) "no negative coef" true (Array.for_all (fun c -> c >= 0.0) beta)

let test_linalg_matmul () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let id = Linalg.identity 2 in
  let c = Linalg.mat_mul a id in
  Alcotest.(check bool) "a * I = a" true (c = a);
  let v = Linalg.mat_vec a [| 1.0; 1.0 |] in
  check_float "row sums" 3.0 v.(0);
  check_float "row sums" 7.0 v.(1)

let test_bits_popcount_hamming () =
  Alcotest.(check int) "popcount 0" 0 (Bits.popcount 0);
  Alcotest.(check int) "popcount 0b1011" 3 (Bits.popcount 0b1011);
  Alcotest.(check int) "hamming" 2 (Bits.hamming 0b1100 0b1001)

let test_bits_gray_roundtrip () =
  for v = 0 to 255 do
    Alcotest.(check int) "roundtrip" v (Bits.of_gray (Bits.to_gray v))
  done;
  (* consecutive values differ in one bit under gray *)
  for v = 0 to 254 do
    Alcotest.(check int) "adjacent gray distance" 1
      (Bits.hamming (Bits.to_gray v) (Bits.to_gray (v + 1)))
  done

let test_bits_roundtrip () =
  for v = 0 to 63 do
    let bits = Bits.bits_of_int ~width:6 v in
    Alcotest.(check int) "bits roundtrip" v (Bits.int_of_bits bits)
  done

let test_bits_sign_extend () =
  Alcotest.(check int) "positive" 3 (Bits.sign_extend ~width:4 3);
  Alcotest.(check int) "negative" (-1) (Bits.sign_extend ~width:4 0xF);
  Alcotest.(check int) "-8" (-8) (Bits.sign_extend ~width:4 8);
  Alcotest.(check int) "of_signed inverse" 0xF (Bits.of_signed ~width:4 (-1))

let test_bits_transitions () =
  Alcotest.(check int) "no transitions" 0 (Bits.transitions ~width:8 [| 5; 5; 5 |]);
  Alcotest.(check int) "one flip per step" 2 (Bits.transitions ~width:8 [| 0; 1; 0 |]);
  Alcotest.(check int) "full flip" 8 (Bits.transitions ~width:8 [| 0; 255 |])

let test_heap_ordering () =
  let h = Heap.create () in
  let r = Prng.create 5 in
  let keys = Array.init 500 (fun _ -> Prng.float r 100.0) in
  Array.iteri (fun i k -> Heap.push h k i) keys;
  Alcotest.(check int) "size" 500 (Heap.size h);
  let last = ref neg_infinity in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, _) ->
        Alcotest.(check bool) "non-decreasing" true (k >= !last);
        last := k;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "30"; "4" ] ] in
  Alcotest.(check bool) "has rule" true (String.length s > 0 && String.contains s '-');
  Alcotest.(check string) "pct" "12.3%" (Table.fmt_pct 0.123);
  Alcotest.(check string) "float" "1.50" (Table.fmt_float 1.5)

let qcheck_gray_distance =
  QCheck.Test.make ~name:"gray code of consecutive ints differs by 1 bit"
    QCheck.(int_bound 100_000)
    (fun v -> Bits.hamming (Bits.to_gray v) (Bits.to_gray (v + 1)) = 1)

let qcheck_popcount_additive =
  QCheck.Test.make ~name:"popcount of disjoint or adds"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      let b = b land lnot a in
      Bits.popcount (a lor b) = Bits.popcount a + Bits.popcount b)

let qcheck_solve_roundtrip =
  QCheck.Test.make ~name:"solve(A, A x) = x for diagonally dominant A"
    QCheck.(pair small_int (list_of_size (Gen.return 9) (float_range (-1.0) 1.0)))
    (fun (seed, coeffs) ->
      QCheck.assume (List.length coeffs = 9);
      let c = Array.of_list coeffs in
      let a =
        Array.init 3 (fun i ->
            Array.init 3 (fun j ->
                let v = c.((3 * i) + j) in
                if i = j then 5.0 +. abs_float v else v))
      in
      let r = Prng.create seed in
      let x = Array.init 3 (fun _ -> Prng.float r 10.0 -. 5.0) in
      let b = Linalg.mat_vec a x in
      let x' = Linalg.solve a b in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-6) x x')

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "prng bernoulli" `Quick test_prng_bernoulli;
    Alcotest.test_case "prng gaussian" `Quick test_prng_gaussian;
    Alcotest.test_case "prng exponential" `Quick test_prng_exponential;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng weighted pick" `Quick test_prng_weighted;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats relative error" `Quick test_stats_relative_error;
    Alcotest.test_case "stats correlation" `Quick test_stats_correlation;
    Alcotest.test_case "stats linear regression" `Quick test_stats_linreg;
    Alcotest.test_case "stats ratio estimator" `Quick test_stats_ratio_estimator;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile extremes" `Quick test_stats_percentile_extremes;
    Alcotest.test_case "stats histogram degenerate" `Quick test_stats_histogram_degenerate;
    Alcotest.test_case "stats single element" `Quick test_stats_single_element;
    Alcotest.test_case "stats correlation constant" `Quick test_stats_correlation_constant;
    Alcotest.test_case "stats t quantile" `Quick test_stats_t_quantile;
    Alcotest.test_case "stats t vs z interval" `Quick test_stats_t_interval_wider_than_z;
    Alcotest.test_case "stats ratio zero sample" `Quick test_stats_ratio_estimator_zero_sample;
    Alcotest.test_case "linalg solve" `Quick test_linalg_solve;
    Alcotest.test_case "linalg singular" `Quick test_linalg_singular;
    Alcotest.test_case "linalg least squares" `Quick test_linalg_least_squares;
    Alcotest.test_case "linalg nonneg least squares" `Quick test_linalg_nonneg;
    Alcotest.test_case "linalg matmul" `Quick test_linalg_matmul;
    Alcotest.test_case "bits popcount/hamming" `Quick test_bits_popcount_hamming;
    Alcotest.test_case "bits gray roundtrip" `Quick test_bits_gray_roundtrip;
    Alcotest.test_case "bits int roundtrip" `Quick test_bits_roundtrip;
    Alcotest.test_case "bits sign extend" `Quick test_bits_sign_extend;
    Alcotest.test_case "bits transitions" `Quick test_bits_transitions;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "table render" `Quick test_table_render;
    QCheck_alcotest.to_alcotest qcheck_gray_distance;
    QCheck_alcotest.to_alcotest qcheck_popcount_additive;
    QCheck_alcotest.to_alcotest qcheck_solve_roundtrip;
  ]
