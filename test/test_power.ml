open Hlp_power

let make_mult_dut n =
  { Macromodel.net = Hlp_logic.Generators.multiplier_circuit n; widths = [ n; n ] }

let make_adder_dut n =
  { Macromodel.net = Hlp_logic.Generators.adder_circuit n; widths = [ n; n ] }

(* --- entropy --- *)

let test_activity_bound_on_circuits () =
  (* measured average input-bit activity must respect E <= h/2 per line for
     temporally independent streams *)
  let rng = Hlp_util.Prng.create 3 in
  List.iter
    (fun p ->
      let tr = Hlp_sim.Streams.biased_bits rng ~width:16 ~p ~n:6000 in
      let act = Hlp_sim.Activity.of_trace ~width:16 tr in
      let h = Hlp_sim.Activity.mean_bit_entropy act in
      let e = Hlp_sim.Activity.mean_activity act in
      Alcotest.(check bool)
        (Printf.sprintf "E=%.3f <= h/2=%.3f at p=%.1f" e (h /. 2.0) p)
        true
        (e <= Entropy.activity_upper_bound h +. 0.02))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_h_avg_marculescu_limits () =
  (* no decay: h_avg = h_in *)
  Alcotest.(check (float 1e-6)) "no decay" 0.9
    (Entropy.h_avg_marculescu ~n:8 ~m:8 ~h_in:0.9 ~h_out:0.9);
  (* h_avg lies between h_out and h_in *)
  let h = Entropy.h_avg_marculescu ~n:16 ~m:4 ~h_in:1.0 ~h_out:0.2 in
  Alcotest.(check bool) "between boundaries" true (h > 0.2 && h < 1.0)

let test_h_avg_nemani_najm () =
  (* with H_in = n and H_out = m (maximum-entropy boundaries):
     h_avg = 2 (n + m) / (3 (n + m)) = 2/3 *)
  Alcotest.(check (float 1e-9)) "max entropy" (2.0 /. 3.0)
    (Entropy.h_avg_nemani_najm ~n:12 ~m:4 ~h_in:12.0 ~h_out:4.0)

let test_entropy_estimate_tracks_simulation () =
  (* the model estimate of E_avg should be the right order of magnitude and
     an upper-bound-ish value w.r.t. simulated average activity *)
  let net = Hlp_logic.Generators.adder_circuit 8 in
  let rng = Hlp_util.Prng.create 17 in
  let trace =
    Hlp_sim.Streams.uniform rng ~width:16 ~n:2000
  in
  List.iter
    (fun model ->
      let est = Entropy.estimate_netlist ~model net ~input_trace:trace in
      (* simulate the true average activity *)
      let sim = Hlp_sim.Funcsim.create net in
      Hlp_sim.Funcsim.run sim
        (fun i -> Array.init 16 (fun b -> Hlp_util.Bits.bit trace.(i) b))
        2000;
      let actual = Hlp_sim.Funcsim.average_activity sim in
      let ratio = est.Entropy.e_avg /. actual in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.2f in [0.5, 4]" ratio)
        true
        (ratio > 0.5 && ratio < 4.0))
    [ Entropy.Marculescu; Entropy.Nemani_najm ]

let test_entropy_power_formula () =
  Alcotest.(check (float 1e-9)) "P = 0.5 V^2 f C E" 125.0
    (Entropy.power ~c_tot:100.0 ~e_avg:0.1 ~vdd:5.0 ~freq:1.0)

(* --- captot --- *)

let test_cheng_agrawal_pessimism () =
  (* exponential in n: n=16 estimate must dwarf the real capacitance of an
     adder, the documented weakness *)
  let net = Hlp_logic.Generators.adder_circuit 8 in
  let est = Captot.cheng_agrawal ~n:16 ~m:9 ~h_out:1.0 in
  Alcotest.(check bool) "pessimistic" true
    (est > 10.0 *. Hlp_logic.Netlist.total_capacitance net)

let test_ferrandi_fit_and_predict () =
  (* fit alpha/beta on a structured circuit family; prediction should
     correlate with actual total capacitance far better than Cheng-Agrawal *)
  let population =
    List.map
      (fun net -> (net, Hlp_logic.Netlist.total_capacitance net))
      [
        Hlp_logic.Generators.adder_circuit 4;
        Hlp_logic.Generators.adder_circuit 6;
        Hlp_logic.Generators.adder_circuit 8;
        Hlp_logic.Generators.adder_circuit 12;
        Hlp_logic.Generators.comparator_circuit 4;
        Hlp_logic.Generators.comparator_circuit 8;
        Hlp_logic.Generators.max_circuit 4;
        Hlp_logic.Generators.max_circuit 6;
        Hlp_logic.Generators.max_circuit 8;
        Hlp_logic.Generators.parity_circuit 8;
        Hlp_logic.Generators.parity_circuit 12;
        Hlp_logic.Generators.alu_circuit 4;
      ]
  in
  let fit = Captot.fit_ferrandi population in
  let actuals = Array.of_list (List.map snd population) in
  let preds =
    Array.of_list
      (List.map
         (fun (net, _) ->
           let open Hlp_logic in
           Captot.ferrandi_predict fit
             ~n:(Array.length net.Netlist.inputs)
             ~m:(Array.length net.Netlist.outputs)
             ~bdd_nodes:(Captot.bdd_nodes_of_netlist net)
             ~h_out:(Captot.h_out_white_noise net))
         population)
  in
  let corr = Hlp_util.Stats.correlation actuals preds in
  Alcotest.(check bool) (Printf.sprintf "correlation %.2f > 0.5" corr) true (corr > 0.5)

let test_h_out_white_noise_xor () =
  (* xor of two fair inputs is fair: entropy 1 *)
  let b = Hlp_logic.Netlist.Builder.create () in
  let i0 = Hlp_logic.Netlist.Builder.input b in
  let i1 = Hlp_logic.Netlist.Builder.input b in
  Hlp_logic.Netlist.Builder.output b "o" (Hlp_logic.Netlist.Builder.xor_ b i0 i1);
  let net = Hlp_logic.Netlist.Builder.finish b in
  Alcotest.(check (float 1e-9)) "xor entropy" 1.0 (Captot.h_out_white_noise net)

(* --- primes / complexity --- *)

let test_primes_known_function () =
  (* f = x0 x1 + x1' over 2 vars: on-set {0, 2, 3} ({00, 10, 11}) *)
  let ps = Primes.primes ~nvars:2 [ 0b00; 0b10; 0b11 ] in
  (* primes: x1' (covers 00, 10) and x0 (covers 10, 11) *)
  Alcotest.(check int) "two primes" 2 (List.length ps);
  let ess = Primes.essential_primes ~nvars:2 [ 0b00; 0b10; 0b11 ] in
  Alcotest.(check int) "both essential" 2 (List.length ess)

let test_primes_cover_complete () =
  let rng = Hlp_util.Prng.create 5 in
  for _ = 1 to 30 do
    let nvars = 4 + Hlp_util.Prng.int rng 3 in
    let on_set =
      List.filter
        (fun _ -> Hlp_util.Prng.bernoulli rng 0.4)
        (List.init (1 lsl nvars) (fun i -> i))
    in
    if on_set <> [] then begin
      let cov = Primes.cover ~nvars on_set in
      (* every on-set minterm covered, and no cube covers an off-set minterm *)
      List.iter
        (fun m ->
          Alcotest.(check bool) "covered" true
            (List.exists (fun c -> Primes.cube_covers c m) cov))
        on_set;
      let on_tbl = Hashtbl.create 64 in
      List.iter (fun m -> Hashtbl.replace on_tbl m ()) on_set;
      for m = 0 to (1 lsl nvars) - 1 do
        if not (Hashtbl.mem on_tbl m) then
          Alcotest.(check bool) "no off-set leak" false
            (List.exists (fun c -> Primes.cube_covers c m) cov)
      done
    end
  done

let test_primes_tautology () =
  let nvars = 3 in
  let all = List.init 8 (fun i -> i) in
  let ps = Primes.primes ~nvars all in
  Alcotest.(check int) "single universal prime" 1 (List.length ps);
  Alcotest.(check int) "zero literals" 0
    (Primes.cube_literals ~nvars (List.hd ps))

let test_linear_measure_extremes () =
  (* constant function: measure 0 on the on side *)
  let m = Complexity.linear_measure ~nvars:4 ~on_set:(List.init 16 (fun i -> i)) in
  Alcotest.(check (float 1e-9)) "tautology on-measure" 0.0 m.Complexity.c_on;
  (* parity: every essential prime is a minterm (n literals) *)
  let parity_on =
    List.filter (fun i -> Hlp_util.Bits.popcount i mod 2 = 1) (List.init 16 (fun i -> i))
  in
  let mp = Complexity.linear_measure ~nvars:4 ~on_set:parity_on in
  Alcotest.(check (float 1e-9)) "parity on-measure" 2.0 mp.Complexity.c_on;
  Alcotest.(check bool) "parity more complex" true (mp.Complexity.c_avg > m.Complexity.c_avg)

let test_area_regression_positive_slope () =
  let rng = Hlp_util.Prng.create 11 in
  let nvars = 6 in
  let population =
    List.init 25 (fun i ->
        let density = 0.1 +. (0.035 *. float_of_int i) in
        let on_set =
          List.filter
            (fun _ -> Hlp_util.Prng.bernoulli rng density)
            (List.init (1 lsl nvars) (fun m -> m))
        in
        (on_set, Complexity.actual_area ~nvars ~on_set))
  in
  let population = List.filter (fun (s, _) -> s <> []) population in
  let { Hlp_util.Stats.slope; r2; _ } = Complexity.fit_area_regression ~nvars population in
  Alcotest.(check bool) (Printf.sprintf "slope %.2f positive" slope) true (slope > 0.0);
  Alcotest.(check bool) (Printf.sprintf "r2 %.2f meaningful" r2) true (r2 > 0.3)

let test_ces_estimate_order_of_magnitude () =
  (* CES is implementation/data independent; should land within 4x of the
     simulated white-noise capacitance for a mid-size module *)
  let net = Hlp_logic.Generators.multiplier_circuit 8 in
  let est = Complexity.ces_switched_capacitance_estimate Complexity.ces_default net in
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create 13 in
  let a = Hlp_sim.Streams.uniform rng ~width:8 ~n:500 in
  let bb = Hlp_sim.Streams.uniform rng ~width:8 ~n:500 in
  Hlp_sim.Funcsim.run sim (Hlp_sim.Streams.pack_fn ~widths:[ 8; 8 ] [ a; bb ]) 500;
  let actual = Hlp_sim.Funcsim.switched_capacitance sim /. 500.0 in
  let ratio = est /. actual in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [0.25, 4]" ratio)
    true
    (ratio > 0.25 && ratio < 4.0)

let test_controller_fit () =
  let samples = List.map Complexity.controller_sample (Hlp_fsm.Stg.zoo ()) in
  let fit = Complexity.fit_controller samples in
  Alcotest.(check bool) "nonnegative coefficients" true
    (fit.Complexity.c_i >= 0.0 && fit.Complexity.c_o >= 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "r2 %.2f decent" fit.Complexity.r2)
    true (fit.Complexity.r2 > 0.5);
  (* predictions within 2x for the training machines (it is a 2-parameter
     model, the paper's "higher degree of accuracy" claim is relative) *)
  List.iter
    (fun s ->
      let p = Complexity.controller_predict fit s in
      let ratio = p /. s.Complexity.cap_per_cycle in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.2f" ratio)
        true (ratio > 0.2 && ratio < 5.0))
    samples

(* --- macromodel --- *)

let fitted_models dut =
  let obs = List.map (Macromodel.observe dut) (Macromodel.training_streams dut) in
  (obs, List.map (fun k -> (k, Macromodel.fit k dut obs)) [ Macromodel.Pfa; Macromodel.Dual_bit; Macromodel.Bitwise; Macromodel.Input_output ])

let test_macromodel_training_fit () =
  let dut = make_mult_dut 8 in
  let obs, models = fitted_models dut in
  List.iter
    (fun (k, m) ->
      let err = Macromodel.evaluate ~predict:(Macromodel.predict m) obs in
      Alcotest.(check bool)
        (Printf.sprintf "%s training error %.3f < 0.5" (Macromodel.kind_name k) err)
        true (err < 0.5))
    models

let test_streams rng width =
  List.map
    (fun mk -> mk ())
    [
      (fun () ->
        [ Hlp_sim.Streams.gaussian_walk rng ~width ~sigma:5.0 ~n:400;
          Hlp_sim.Streams.gaussian_walk rng ~width ~sigma:60.0 ~n:400 ]);
      (fun () ->
        [ Hlp_sim.Streams.correlated_bits rng ~width ~p:0.4 ~rho:0.7 ~n:400;
          Hlp_sim.Streams.biased_bits rng ~width ~p:0.6 ~n:400 ]);
      (fun () ->
        [ Hlp_sim.Streams.biased_bits rng ~width ~p:0.25 ~n:400;
          Hlp_sim.Streams.correlated_bits rng ~width ~p:0.5 ~rho:0.4 ~n:400 ]);
    ]

let test_macromodel_accuracy_ladder () =
  (* data-sensitive models must beat the constant PFA model on correlated,
     unseen streams: io on the multiplier (deep logic nesting, exactly the
     case the paper says needs the output term), bitwise on the adder
     (per-bit linear datapath) *)
  let rng = Hlp_util.Prng.create 999 in
  let mult = make_mult_dut 8 in
  let _, mult_models = fitted_models mult in
  let mult_obs = List.map (Macromodel.observe mult) (test_streams rng 8) in
  let err models obs k =
    let m = List.assoc k models in
    Macromodel.evaluate ~predict:(Macromodel.predict m) obs
  in
  let e_pfa = err mult_models mult_obs Macromodel.Pfa in
  let e_io = err mult_models mult_obs Macromodel.Input_output in
  Alcotest.(check bool)
    (Printf.sprintf "mult: io %.3f better than pfa %.3f" e_io e_pfa)
    true (e_io < e_pfa);
  let adder = make_adder_dut 8 in
  let _, adder_models = fitted_models adder in
  let adder_obs = List.map (Macromodel.observe adder) (test_streams rng 8) in
  let a_pfa = err adder_models adder_obs Macromodel.Pfa in
  let a_bw = err adder_models adder_obs Macromodel.Bitwise in
  Alcotest.(check bool)
    (Printf.sprintf "adder: bitwise %.3f better than pfa %.3f" a_bw a_pfa)
    true (a_bw < a_pfa)

let test_macromodel_3dtable () =
  let dut = make_adder_dut 8 in
  let obs = List.map (Macromodel.observe dut) (Macromodel.training_streams dut) in
  let table = Macromodel.fit_table obs in
  let err = Macromodel.evaluate ~predict:(Macromodel.predict_table table) obs in
  Alcotest.(check bool) (Printf.sprintf "table training error %.3f" err) true (err < 0.35);
  (* interpolation: an unseen intermediate stream still gets a sane value *)
  let rng = Hlp_util.Prng.create 321 in
  let unseen =
    Macromodel.observe dut
      [ Hlp_sim.Streams.biased_bits rng ~width:8 ~p:0.45 ~n:300;
        Hlp_sim.Streams.biased_bits rng ~width:8 ~p:0.55 ~n:300 ]
  in
  let p = Macromodel.predict_table table unseen.Macromodel.stats in
  Alcotest.(check bool) "interpolated positive" true (p > 0.0)

let test_macromodel_coeffs_nonnegative () =
  let dut = make_adder_dut 6 in
  let obs = List.map (Macromodel.observe dut) (Macromodel.training_streams dut) in
  List.iter
    (fun k ->
      let m = Macromodel.fit k dut obs in
      (* predictions are nonnegative for any stats because coefficients are *)
      List.iter
        (fun o ->
          Alcotest.(check bool) "pred >= 0" true
            (Macromodel.predict m o.Macromodel.stats >= 0.0))
        obs)
    [ Macromodel.Pfa; Macromodel.Dual_bit; Macromodel.Bitwise; Macromodel.Input_output ]

(* --- sampling --- *)

let prepare_cosim ?(kind = Macromodel.Bitwise) ?(n = 4000) ~train_white ~test_walk () =
  let dut = make_adder_dut 8 in
  let rng = Hlp_util.Prng.create 55 in
  let training =
    if train_white then
      [ [ Hlp_sim.Streams.uniform rng ~width:8 ~n:400;
          Hlp_sim.Streams.uniform rng ~width:8 ~n:400 ] ]
    else Macromodel.training_streams dut
  in
  let obs = List.map (Macromodel.observe dut) training in
  let model = Macromodel.fit kind dut obs in
  let traces =
    if test_walk then
      [ Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:4.0 ~n;
        Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:4.0 ~n ]
    else
      [ Hlp_sim.Streams.uniform rng ~width:8 ~n;
        Hlp_sim.Streams.uniform rng ~width:8 ~n ]
  in
  Sampling.prepare model dut traces

let test_sampling_census_on_training_distribution () =
  let t = prepare_cosim ~train_white:true ~test_walk:false () in
  let census = Sampling.census t in
  let actual = Sampling.gate_reference t in
  let err = Hlp_util.Stats.relative_error ~actual ~estimate:census.Sampling.value in
  Alcotest.(check bool) (Printf.sprintf "census in-distribution %.3f" err) true (err < 0.15)

let test_sampling_sampler_close_to_census () =
  let t = prepare_cosim ~train_white:true ~test_walk:false () in
  let census = Sampling.census t in
  let sampler = Sampling.sampler ~seed:77 t in
  let dev =
    Hlp_util.Stats.relative_error ~actual:census.Sampling.value
      ~estimate:sampler.Sampling.value
  in
  Alcotest.(check bool) (Printf.sprintf "sampler dev %.3f < 0.05" dev) true (dev < 0.05);
  (* the 50x efficiency claim *)
  let speedup =
    float_of_int census.Sampling.macro_evaluations
    /. float_of_int sampler.Sampling.macro_evaluations
  in
  Alcotest.(check bool) (Printf.sprintf "speedup %.0fx >= 15x" speedup) true (speedup >= 15.0)

let test_sampling_adaptive_fixes_bias () =
  (* white-noise-trained model on a correlated walk stream: census is
     biased; adaptive must cut the error substantially *)
  let t = prepare_cosim ~train_white:true ~test_walk:true () in
  let actual = Sampling.gate_reference t in
  let census = Sampling.census t in
  let adaptive = Sampling.adaptive ~seed:99 t in
  let e_census = Hlp_util.Stats.relative_error ~actual ~estimate:census.Sampling.value in
  let e_adaptive = Hlp_util.Stats.relative_error ~actual ~estimate:adaptive.Sampling.value in
  Alcotest.(check bool)
    (Printf.sprintf "census biased (%.3f > 0.08)" e_census)
    true (e_census > 0.08);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.3f < census %.3f" e_adaptive e_census)
    true (e_adaptive < e_census);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive small %.3f" e_adaptive)
    true (e_adaptive < 0.08);
  Alcotest.(check bool) "few gate cycles" true (adaptive.Sampling.gate_cycles <= 50)

(* --- memory model --- *)

let test_memory_components_positive () =
  let s = Memory_model.default_sram ~n:12 ~k:6 in
  List.iter
    (fun (name, v) -> Alcotest.(check bool) name true (v > 0.0))
    [
      ("cells", Memory_model.cell_array_energy s);
      ("decoder", Memory_model.row_decoder_energy s);
      ("wordline", Memory_model.word_line_energy s);
      ("colsel", Memory_model.column_select_energy s);
      ("sense", Memory_model.sense_amp_energy s);
    ]

let test_memory_organization_tradeoff () =
  (* extreme aspect ratios must both be worse than the optimum *)
  let n = 14 in
  let k_opt = Memory_model.optimal_k ~n in
  Alcotest.(check bool) "optimum strictly inside" true (k_opt > 0 && k_opt < n);
  let e k = Memory_model.read_energy (Memory_model.default_sram ~n ~k) in
  Alcotest.(check bool) "tall-narrow worse" true (e 0 > e k_opt);
  Alcotest.(check bool) "short-wide worse" true (e n > e k_opt)

let test_memory_grows_with_size () =
  let e n = Memory_model.read_energy (Memory_model.default_sram ~n ~k:(Memory_model.optimal_k ~n)) in
  Alcotest.(check bool) "bigger memory costs more" true (e 16 > e 10)

let test_htree_clock () =
  let c4 = Memory_model.htree_clock_capacitance ~levels:4 ~c_wire_root:10.0 in
  let c8 = Memory_model.htree_clock_capacitance ~levels:8 ~c_wire_root:10.0 in
  Alcotest.(check bool) "more levels, more cap" true (c8 > c4);
  Alcotest.(check bool) "positive" true (c4 > 0.0)

(* --- cycle-accurate macro-models --- *)

let cycle_setup () =
  let dut = make_adder_dut 8 in
  let rng = Hlp_util.Prng.create 42 in
  let mk n =
    [ Hlp_sim.Streams.gaussian_walk rng ~width:8 ~sigma:15.0 ~n;
      Hlp_sim.Streams.uniform rng ~width:8 ~n ]
  in
  let train = Cyclemodel.collect dut (mk 1500) in
  let test = Cyclemodel.collect dut (mk 1000) in
  (train, test)

let test_cyclemodel_qiu_accuracy () =
  let train, test = cycle_setup () in
  let qiu = Cyclemodel.fit_qiu train in
  let a =
    Cyclemodel.accuracy ~predicted:(Cyclemodel.predict_qiu qiu test)
      ~actual:(Cyclemodel.reference test)
  in
  Alcotest.(check bool)
    (Printf.sprintf "avg error %.3f < 0.10" a.Cyclemodel.average_error)
    true (a.Cyclemodel.average_error < 0.10);
  Alcotest.(check bool)
    (Printf.sprintf "cycle error %.3f < 0.25" a.Cyclemodel.cycle_error)
    true (a.Cyclemodel.cycle_error < 0.25);
  Alcotest.(check bool) "selected a handful of variables" true
    (Cyclemodel.qiu_variables qiu >= 2)

let test_cyclemodel_qiu_beats_clusters () =
  let train, test = cycle_setup () in
  let qiu = Cyclemodel.fit_qiu train in
  let clus = Cyclemodel.fit_clusters train in
  let err pred =
    (Cyclemodel.accuracy ~predicted:pred ~actual:(Cyclemodel.reference test))
      .Cyclemodel.cycle_error
  in
  let eq = err (Cyclemodel.predict_qiu qiu test) in
  let ec = err (Cyclemodel.predict_clusters clus test) in
  Alcotest.(check bool)
    (Printf.sprintf "qiu %.3f <= clusters %.3f" eq ec)
    true (eq <= ec)

let test_cyclemodel_reference_totals () =
  (* per-cycle reference powers must sum to (almost) the stream total *)
  let dut = make_adder_dut 6 in
  let rng = Hlp_util.Prng.create 7 in
  let traces =
    [ Hlp_sim.Streams.uniform rng ~width:6 ~n:500;
      Hlp_sim.Streams.uniform rng ~width:6 ~n:500 ]
  in
  let t = Cyclemodel.collect dut traces in
  Alcotest.(check bool) "positive cycle count" true (Cyclemodel.num_cycles t > 400);
  Array.iter
    (fun p -> Alcotest.(check bool) "per-cycle power nonnegative" true (p >= 0.0))
    (Cyclemodel.reference t)

(* --- probabilistic propagation + Monte Carlo --- *)

let test_propagate_exact_on_trees () =
  (* on fanout-free logic the independence assumption is exact *)
  let module B = Hlp_logic.Netlist.Builder in
  let b = B.create () in
  let i0 = B.input b and i1 = B.input b and i2 = B.input b and i3 = B.input b in
  let a = B.and_ b [ i0; i1 ] in
  let o = B.or_ b [ a; B.xor_ b i2 i3 ] in
  B.output b "o" o;
  let net = B.finish b in
  let stats = Probprop.propagate net in
  Alcotest.(check (float 1e-9)) "P(and)" 0.25 stats.Probprop.prob.(a);
  (* P(or) = 1 - (1-1/4)(1-1/2) = 5/8 *)
  Alcotest.(check (float 1e-9)) "P(or of and, xor)" 0.625 stats.Probprop.prob.(o)

let test_propagate_tracks_simulation () =
  (* per-node probabilities within a few percent of simulation on an adder *)
  let net = Hlp_logic.Generators.adder_circuit 6 in
  let stats = Probprop.propagate net in
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create 3 in
  let cycles = 6000 in
  Hlp_sim.Funcsim.run sim (fun _ -> Array.init 12 (fun _ -> Hlp_util.Prng.bool rng)) cycles;
  let highs = Hlp_sim.Funcsim.high_counts sim in
  let errs = ref [] in
  Array.iteri
    (fun i c ->
      let measured = float_of_int c /. float_of_int cycles in
      errs := abs_float (measured -. stats.Probprop.prob.(i)) :: !errs)
    highs;
  let worst = List.fold_left max 0.0 !errs in
  (* reconvergent fanout (the shared x xor y term of each full adder) makes
     the independence assumption approximate; the classic error band *)
  Alcotest.(check bool) (Printf.sprintf "worst prob error %.3f < 0.12" worst) true
    (worst < 0.12)

let test_propagate_capacitance_estimate () =
  (* the propagated capacitance should land within 2x of simulation for an
     adder (reconvergence makes it approximate, not wild) *)
  let net = Hlp_logic.Generators.adder_circuit 8 in
  let est = Probprop.estimate_capacitance net (Probprop.propagate net) in
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create 5 in
  Hlp_sim.Funcsim.run sim (fun _ -> Array.init 16 (fun _ -> Hlp_util.Prng.bool rng)) 3000;
  let actual = Hlp_sim.Funcsim.switched_capacitance sim /. 3000.0 in
  let ratio = est /. actual in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [0.5, 2]" ratio) true
    (ratio > 0.5 && ratio < 2.0)

let test_monte_carlo_stopping () =
  let net = Hlp_logic.Generators.multiplier_circuit 6 in
  let mc = Probprop.monte_carlo ~relative_precision:0.05 net in
  (* the stopping rule must fire well before the cap, and the estimate must
     be consistent with a long reference run *)
  Alcotest.(check bool) "stopped early" true (mc.Probprop.cycles_used < 100_000);
  let sim = Hlp_sim.Funcsim.create net in
  let rng = Hlp_util.Prng.create 99 in
  Hlp_sim.Funcsim.run sim (fun _ -> Array.init 12 (fun _ -> Hlp_util.Prng.bool rng)) 20_000;
  let reference = Hlp_sim.Funcsim.switched_capacitance sim /. 20_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f within 10%% of reference %.1f" mc.Probprop.estimate reference)
    true
    (Hlp_util.Stats.relative_error ~actual:reference ~estimate:mc.Probprop.estimate < 0.10)

let test_monte_carlo_tighter_needs_more () =
  let net = Hlp_logic.Generators.adder_circuit 8 in
  let loose = Probprop.monte_carlo ~relative_precision:0.10 ~seed:7 net in
  let tight = Probprop.monte_carlo ~relative_precision:0.02 ~seed:7 net in
  Alcotest.(check bool) "tighter precision costs cycles" true
    (tight.Probprop.cycles_used >= loose.Probprop.cycles_used)

(* batch means of one seeded Monte Carlo run, exactly as the scalar
   stopping loop computes them (cumulative-capacitance differences) *)
let batch_means_of_run ~seed ~batches ~batch net =
  let rng = Hlp_util.Prng.create seed in
  let sim = Hlp_sim.Funcsim.create net in
  let nin = Array.length net.Hlp_logic.Netlist.inputs in
  let prev = ref 0.0 in
  Array.init batches (fun _ ->
      for _ = 1 to batch do
        Hlp_sim.Funcsim.step sim (Array.init nin (fun _ -> Hlp_util.Prng.bool rng))
      done;
      let cap = Hlp_sim.Funcsim.switched_capacitance sim in
      let m = (cap -. !prev) /. float_of_int batch in
      prev := cap;
      m)

let test_monte_carlo_interval_coverage () =
  (* The headline bug this PR fixes. The stopping rule can fire on as few
     as 3 batch means, and the seed implementation built its "95%" interval
     with the normal z = 1.96 multiplier; the correct 95% multiplier at
     df = 2 is t_{2,0.975} = 4.303, so the z-interval misses the long-run
     mean far more than 5% of the time (theoretical coverage ~81%).

     Empirical check over 200 independently seeded 3-batch runs: the
     Student-t interval must cover the long-run reference at least 90% of
     the time, and the old z-interval must demonstrably stay below 90% —
     i.e. this test fails if ci_half_width is reverted to 1.96. *)
  let net = Hlp_logic.Generators.adder_circuit 6 in
  let reference =
    let sim = Hlp_sim.Funcsim.create net in
    let rng = Hlp_util.Prng.create 999 in
    let refcycles = 50_000 in
    Hlp_sim.Funcsim.run sim
      (fun _ -> Array.init 12 (fun _ -> Hlp_util.Prng.bool rng))
      refcycles;
    Hlp_sim.Funcsim.switched_capacitance sim /. float_of_int refcycles
  in
  let runs = 200 in
  let t_cov = ref 0 and z_cov = ref 0 in
  for seed = 1 to runs do
    let means = batch_means_of_run ~seed ~batches:3 ~batch:30 net in
    let t_lo, t_hi = Hlp_util.Stats.confidence_interval ~level:0.95 ~df:2 means in
    let z_lo, z_hi = Hlp_util.Stats.confidence_interval_95 means in
    if t_lo <= reference && reference <= t_hi then incr t_cov;
    if z_lo <= reference && reference <= z_hi then incr z_cov
  done;
  let t_frac = float_of_int !t_cov /. float_of_int runs in
  let z_frac = float_of_int !z_cov /. float_of_int runs in
  Alcotest.(check bool)
    (Printf.sprintf "t-interval coverage %.2f >= 0.90" t_frac)
    true (t_frac >= 0.90);
  Alcotest.(check bool)
    (Printf.sprintf "z-interval coverage %.2f < 0.90 (the fixed bug)" z_frac)
    true (z_frac < 0.90)

(* --- adaptive estimator on degenerate activity (ratio-estimator fallback) --- *)

let test_adaptive_sparse_activity_falls_back_to_census () =
  (* One busy transition in 10^5 idle ones: the 40-cycle sample almost
     surely sees only idle cycles, so the sampled macro sum is zero and the
     ratio is undefined. The estimate must degrade to the census value
     (regression: the seed reported 0 power for this stream). *)
  let n = 100_000 in
  let macro_values = Array.make n 0.0 in
  let gate_values = Array.make n 0.0 in
  macro_values.(0) <- 500.0;
  gate_values.(0) <- 480.0;
  let t = Sampling.of_arrays ~macro_values ~gate_values in
  let census = (Sampling.census t).Sampling.value in
  let est = (Sampling.adaptive ~seed:1 t).Sampling.value in
  Alcotest.(check bool) "census positive" true (census > 0.0);
  Alcotest.(check (float 1e-12)) "adaptive degrades to census" census est

let test_adaptive_all_zero_trace () =
  (* fully idle trace: zero power is the right answer and must come out
     finite (no 0/0) *)
  let t =
    Sampling.of_arrays ~macro_values:(Array.make 50 0.0)
      ~gate_values:(Array.make 50 0.0)
  in
  let est = (Sampling.adaptive ~seed:3 t).Sampling.value in
  Alcotest.(check bool) "finite" true (Float.is_finite est);
  Alcotest.(check (float 0.0)) "zero" 0.0 est

(* --- the Fig. 1 flow --- *)

let test_flow_report () =
  let rng = Hlp_util.Prng.create 12 in
  let components =
    [
      Flow.Datapath
        {
          name = "adder";
          dut = make_adder_dut 8;
          traces =
            [ Hlp_sim.Streams.uniform rng ~width:8 ~n:1000;
              Hlp_sim.Streams.uniform rng ~width:8 ~n:1000 ];
        };
      Flow.Controller { name = "ctrl"; stg = Hlp_fsm.Stg.memory_controller () };
      Flow.Glue
        { name = "glue";
          net = Hlp_logic.Generators.random_logic (Hlp_util.Prng.create 31) ~inputs:6 ~outputs:3 ~gates:50 };
    ]
  in
  let report = Flow.estimate components in
  Alcotest.(check int) "one line per component" 3 (List.length report.Flow.lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) (l.Flow.component ^ " estimate positive") true
        (l.Flow.estimate > 0.0);
      Alcotest.(check bool) (l.Flow.component ^ " reference positive") true
        (l.Flow.reference > 0.0))
    report.Flow.lines;
  (* the headline claim: the level-by-level total lands near gate level *)
  Alcotest.(check bool)
    (Printf.sprintf "total error %.1f%% < 40%%" (100.0 *. report.Flow.total_error))
    true
    (report.Flow.total_error < 0.40);
  (* the datapath macro-model line should be the tightest *)
  let adder_line = List.find (fun l -> l.Flow.component = "adder") report.Flow.lines in
  Alcotest.(check bool) "macro-model line tight" true (adder_line.Flow.error < 0.15)

let qcheck_primes_cover_random =
  QCheck.Test.make ~name:"greedy cover covers exactly the on-set" ~count:40
    QCheck.(pair (int_range 2 6) (int_bound 10_000))
    (fun (nvars, seed) ->
      let rng = Hlp_util.Prng.create seed in
      let on_set =
        List.filter
          (fun _ -> Hlp_util.Prng.bernoulli rng 0.5)
          (List.init (1 lsl nvars) (fun i -> i))
      in
      on_set = []
      ||
      let cov = Primes.cover ~nvars on_set in
      let covered m = List.exists (fun c -> Primes.cube_covers c m) cov in
      List.for_all covered on_set
      && List.for_all
           (fun m -> List.mem m on_set || not (covered m))
           (List.init (1 lsl nvars) (fun i -> i)))

let suite =
  [
    Alcotest.test_case "activity <= h/2" `Quick test_activity_bound_on_circuits;
    Alcotest.test_case "marculescu h_avg" `Quick test_h_avg_marculescu_limits;
    Alcotest.test_case "nemani-najm h_avg" `Quick test_h_avg_nemani_najm;
    Alcotest.test_case "entropy estimate tracks sim" `Quick test_entropy_estimate_tracks_simulation;
    Alcotest.test_case "entropy power formula" `Quick test_entropy_power_formula;
    Alcotest.test_case "cheng-agrawal pessimism" `Quick test_cheng_agrawal_pessimism;
    Alcotest.test_case "ferrandi fit" `Quick test_ferrandi_fit_and_predict;
    Alcotest.test_case "h_out white noise xor" `Quick test_h_out_white_noise_xor;
    Alcotest.test_case "primes known function" `Quick test_primes_known_function;
    Alcotest.test_case "primes cover complete" `Quick test_primes_cover_complete;
    Alcotest.test_case "primes tautology" `Quick test_primes_tautology;
    Alcotest.test_case "linear measure extremes" `Quick test_linear_measure_extremes;
    Alcotest.test_case "area regression" `Quick test_area_regression_positive_slope;
    Alcotest.test_case "ces order of magnitude" `Quick test_ces_estimate_order_of_magnitude;
    Alcotest.test_case "controller fit" `Slow test_controller_fit;
    Alcotest.test_case "macromodel training fit" `Slow test_macromodel_training_fit;
    Alcotest.test_case "macromodel accuracy ladder" `Slow test_macromodel_accuracy_ladder;
    Alcotest.test_case "macromodel 3d table" `Quick test_macromodel_3dtable;
    Alcotest.test_case "macromodel nonnegative" `Quick test_macromodel_coeffs_nonnegative;
    Alcotest.test_case "sampling census in-distribution" `Quick test_sampling_census_on_training_distribution;
    Alcotest.test_case "sampling sampler vs census" `Quick test_sampling_sampler_close_to_census;
    Alcotest.test_case "sampling adaptive fixes bias" `Quick test_sampling_adaptive_fixes_bias;
    Alcotest.test_case "memory components" `Quick test_memory_components_positive;
    Alcotest.test_case "memory organization tradeoff" `Quick test_memory_organization_tradeoff;
    Alcotest.test_case "memory grows with size" `Quick test_memory_grows_with_size;
    Alcotest.test_case "htree clock" `Quick test_htree_clock;
    Alcotest.test_case "flow report" `Slow test_flow_report;
    Alcotest.test_case "propagate exact on trees" `Quick test_propagate_exact_on_trees;
    Alcotest.test_case "propagate tracks simulation" `Quick test_propagate_tracks_simulation;
    Alcotest.test_case "propagate capacitance" `Quick test_propagate_capacitance_estimate;
    Alcotest.test_case "monte carlo stopping" `Quick test_monte_carlo_stopping;
    Alcotest.test_case "monte carlo precision" `Quick test_monte_carlo_tighter_needs_more;
    Alcotest.test_case "monte carlo t coverage" `Slow test_monte_carlo_interval_coverage;
    Alcotest.test_case "adaptive sparse activity" `Quick test_adaptive_sparse_activity_falls_back_to_census;
    Alcotest.test_case "adaptive all-zero trace" `Quick test_adaptive_all_zero_trace;
    Alcotest.test_case "cyclemodel qiu accuracy" `Quick test_cyclemodel_qiu_accuracy;
    Alcotest.test_case "cyclemodel qiu beats clusters" `Quick test_cyclemodel_qiu_beats_clusters;
    Alcotest.test_case "cyclemodel reference" `Quick test_cyclemodel_reference_totals;
    QCheck_alcotest.to_alcotest qcheck_primes_cover_random;
  ]
