open Hlp_util

(* Every test leaves the global registry disabled and zeroed so the other
   suites (which run with telemetry off) are unaffected. *)
let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_disabled_noop () =
  Telemetry.disable ();
  Telemetry.reset ();
  let c = Telemetry.counter "test.noop" in
  Telemetry.add c 5;
  Telemetry.incr c;
  Alcotest.(check int) "counter unchanged" 0 (Telemetry.count c);
  let s = Telemetry.series "test.noop_series" in
  Telemetry.observe s 1.0;
  Alcotest.(check int) "series empty" 0 (Array.length (Telemetry.observations s));
  let t = Telemetry.timer "test.noop_timer" in
  let r = Telemetry.time t (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "timer idle" 0 (fst (Telemetry.timer_stats t))

let test_enabled_counts () =
  with_telemetry @@ fun () ->
  let c = Telemetry.counter "test.counts" in
  Telemetry.add c 5;
  Telemetry.incr c;
  Alcotest.(check int) "5 + 1" 6 (Telemetry.count c);
  let s = Telemetry.series "test.counts_series" in
  Telemetry.observe s 1.5;
  Telemetry.observe s 2.5;
  Alcotest.(check (array (float 0.0))) "append order" [| 1.5; 2.5 |]
    (Telemetry.observations s);
  let t = Telemetry.timer "test.counts_timer" in
  ignore (Telemetry.time t (fun () -> Sys.opaque_identity 0));
  let calls, secs = Telemetry.timer_stats t in
  Alcotest.(check int) "one call" 1 calls;
  Alcotest.(check bool) "nonnegative duration" true (secs >= 0.0)

let test_idempotent_registration () =
  with_telemetry @@ fun () ->
  let a = Telemetry.counter "test.same_name" in
  let b = Telemetry.counter "test.same_name" in
  Telemetry.add a 3;
  Alcotest.(check int) "one underlying counter" 3 (Telemetry.count b)

let test_reset_zeroes () =
  with_telemetry @@ fun () ->
  let c = Telemetry.counter "test.reset" in
  let s = Telemetry.series "test.reset_series" in
  Telemetry.add c 7;
  Telemetry.observe s 9.0;
  Telemetry.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Telemetry.count c);
  Alcotest.(check int) "series cleared" 0 (Array.length (Telemetry.observations s));
  Alcotest.(check bool) "switch survives reset" true (Telemetry.enabled ())

let test_multidomain_adds () =
  (* the whole point of atomic counters: concurrent adds from Parsim-style
     worker domains must not lose increments *)
  with_telemetry @@ fun () ->
  let c = Telemetry.counter "test.domains" in
  let worker () =
    for _ = 1 to 10_000 do
      Telemetry.incr c
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  Alcotest.(check int) "5 x 10k" 50_000 (Telemetry.count c)

let test_to_json () =
  with_telemetry @@ fun () ->
  let c = Telemetry.counter "test.json_counter" in
  let s = Telemetry.series "test.json_series" in
  Telemetry.add c 11;
  Telemetry.observe s 2.5;
  let j = Telemetry.to_json () in
  Alcotest.(check bool) "enabled flag" true (contains j "\"enabled\":true");
  Alcotest.(check bool) "counter value" true (contains j "\"test.json_counter\":11");
  Alcotest.(check bool) "series values" true (contains j "\"test.json_series\":[2.5]")

let test_engine_wiring () =
  (* the simulators must actually report: run each engine briefly and check
     its instruments moved *)
  with_telemetry @@ fun () ->
  let net = Hlp_logic.Generators.adder_circuit 4 in
  let rng = Prng.create 11 in
  let sim = Hlp_sim.Funcsim.create net in
  Hlp_sim.Funcsim.run sim (fun _ -> Array.init 8 (fun _ -> Prng.bool rng)) 10;
  Alcotest.(check int) "funcsim cycles" 10
    (Telemetry.count (Telemetry.counter "funcsim.cycles"));
  Alcotest.(check bool) "funcsim gate evals" true
    (Telemetry.count (Telemetry.counter "funcsim.gate_evals") > 0);
  let bsim = Hlp_sim.Bitsim.create net in
  Hlp_sim.Bitsim.step bsim (Array.init 8 (fun _ -> Int64.to_int (Prng.bits64 rng)));
  Alcotest.(check int) "bitsim steps" 1
    (Telemetry.count (Telemetry.counter "bitsim.steps"));
  Alcotest.(check int) "bitsim lane cycles" Hlp_sim.Bitsim.lanes
    (Telemetry.count (Telemetry.counter "bitsim.lane_cycles"));
  Alcotest.(check bool) "bitsim popcounts" true
    (Telemetry.count (Telemetry.counter "bitsim.popcount_ops") > 0);
  let esim = Hlp_sim.Eventsim.create net in
  Hlp_sim.Eventsim.run esim (fun _ -> Array.init 8 (fun _ -> Prng.bool rng)) 5;
  Alcotest.(check int) "eventsim cycles" 5
    (Telemetry.count (Telemetry.counter "eventsim.cycles"));
  Alcotest.(check bool) "eventsim events" true
    (Telemetry.count (Telemetry.counter "eventsim.events_drained") > 0)

let test_monte_carlo_convergence_series () =
  (* the stopping rule must leave a convergence trajectory behind: one
     (running mean, half-width) pair per evaluation from batch 2 on, with
     the final half-width matching the returned interval *)
  with_telemetry @@ fun () ->
  let net = Hlp_logic.Generators.adder_circuit 6 in
  let mc = Hlp_power.Probprop.monte_carlo ~seed:5 net in
  let hw =
    Telemetry.observations (Telemetry.series "probprop.ci_half_width")
  in
  let rm = Telemetry.observations (Telemetry.series "probprop.running_mean") in
  Alcotest.(check int) "one point per batch after the first"
    (mc.Hlp_power.Probprop.batches - 1)
    (Array.length hw);
  Alcotest.(check int) "mean series same length" (Array.length hw)
    (Array.length rm);
  Alcotest.(check (float 1e-9)) "last half-width = returned interval"
    mc.Hlp_power.Probprop.half_interval
    hw.(Array.length hw - 1);
  Alcotest.(check (float 1e-9)) "last running mean = estimate"
    mc.Hlp_power.Probprop.estimate
    rm.(Array.length rm - 1);
  Alcotest.(check int) "batch counter" mc.Hlp_power.Probprop.batches
    (Telemetry.count (Telemetry.counter "probprop.batches"));
  Alcotest.(check int) "cycle counter" mc.Hlp_power.Probprop.cycles_used
    (Telemetry.count (Telemetry.counter "probprop.mc_cycles"))

let suite =
  [
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "enabled counts" `Quick test_enabled_counts;
    Alcotest.test_case "idempotent registration" `Quick test_idempotent_registration;
    Alcotest.test_case "reset zeroes" `Quick test_reset_zeroes;
    Alcotest.test_case "multi-domain adds" `Quick test_multidomain_adds;
    Alcotest.test_case "json output" `Quick test_to_json;
    Alcotest.test_case "engine wiring" `Quick test_engine_wiring;
    Alcotest.test_case "mc convergence series" `Quick test_monte_carlo_convergence_series;
  ]
