(* Crash-only lifecycle: snapshot spill/rehydrate byte-identity, the
   corruption wall (any truncation or bit flip degrades to a counted
   cold start, never a wrong byte), watchdog supervision over real
   child processes (crash restart, wedge detection, flap breaker,
   drain), memory-pressure admission driven through an injected RSS
   source, hot knob reload on a live connection, and client restart
   rides. *)

open Hlp_util
open Hlp_power
module Netcache = Hlp_logic.Netcache

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/hlp_life_test_%d_%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !n

let temp tag = Filename.temp_file ("hlp_life_" ^ tag) ".tmp"

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let mk_ctx () =
  {
    Server.guard = Guard.create ();
    rid = "t-life";
    op = "";
    key = "";
    cache = "";
    status = "ok";
  }

let parse_ok what raw =
  match Service.parse_response raw with
  | Error e -> Alcotest.failf "%s: bad response %s: %s" what raw e
  | Ok r -> r

let result_bytes what r =
  match Service.result_string r with
  | Some s -> s
  | None -> Alcotest.failf "%s: response has no result" what

let eventually ?(timeout_s = 10.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* --- Netcache: second-chance eviction and the audit trail --- *)

let test_netcache_second_chance () =
  let c = Netcache.create ~capacity:4 ~name:"life.sc" () in
  List.iter (fun k -> Netcache.put c ~key:(Int64.of_int k) k) [ 1; 2; 3; 4 ];
  (* a hit marks the entry's recency bit *)
  let v =
    Netcache.find_or_compute c ~key:1L (fun () ->
        Alcotest.fail "key 1 should be a hit")
  in
  Alcotest.(check int) "hit returns the cached value" 1 v;
  (* capacity insert: the clock hand spares marked 1, evicts unmarked 2 *)
  Netcache.put c ~key:5L 5;
  Alcotest.(check bool) "recently-hit entry survives" true (Netcache.mem c 1L);
  Alcotest.(check bool) "unmarked entry evicted" false (Netcache.mem c 2L);
  Alcotest.(check int) "still at capacity" 4 (Netcache.length c)

let test_netcache_eviction_audit () =
  Telemetry.enable ();
  let c = Netcache.create ~capacity:8 ~name:"life.audit" () in
  let ev = Telemetry.counter "life.audit.cache_evictions" in
  let before = Telemetry.count ev in
  List.iter (fun k -> Netcache.put c ~key:(Int64.of_int k) k) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "evict returns the actual count" 2 (Netcache.evict c 2);
  Alcotest.(check int) "clear returns the drop count" 3 (Netcache.clear c);
  Alcotest.(check int) "empty after clear" 0 (Netcache.length c);
  Alcotest.(check int)
    "every departure audited in cache_evictions" 5
    (Telemetry.count ev - before);
  Alcotest.(check int) "evict on empty cache is clamped" 0 (Netcache.evict c 3)

(* --- snapshots: round trip, walls, corruption property --- *)

let est_req =
  Service.estimate_request ~id:1 ~rid:"r-life" ~circuit:"adder" ~width:6 ()

(* pristine snapshot bytes plus the cold-computed reference result the
   whole corruption property compares against; computed once *)
let pristine = lazy (
  let svc = Service.create ~cooldown_s:0.01 () in
  let r = parse_ok "cold reference" (Service.handle svc (mk_ctx ()) est_req) in
  let reference = result_bytes "cold reference" r in
  let path = temp "pristine" in
  let saved = Service.save_snapshot svc ~path in
  let bytes = read_file path in
  Sys.remove path;
  (bytes, reference, saved))

let test_snapshot_roundtrip () =
  let bytes, reference, saved = Lazy.force pristine in
  Alcotest.(check bool) "snapshot holds at least the estimate" true (saved >= 1);
  let path = temp "roundtrip" in
  write_file path bytes;
  let svc = Service.create ~cooldown_s:0.01 () in
  (match Service.load_snapshot svc ~path with
  | `Restored k -> Alcotest.(check int) "every entry restored" saved k
  | `Cold why -> Alcotest.failf "pristine snapshot went cold: %s" why);
  let ctx = mk_ctx () in
  let warm = parse_ok "warm" (Service.handle svc ctx est_req) in
  Alcotest.(check bool) "restored hit marked cached" true warm.Service.cached;
  Alcotest.(check string) "attributed as a cache hit" "hit" ctx.Server.cache;
  Alcotest.(check string)
    "post-restart warm hit byte-identical to cold compute" reference
    (result_bytes "warm" warm);
  Sys.remove path

let frame_json j = Journal.frame (Json.to_string ~compact:true j)

let header ~version ~recipe =
  frame_json
    (Json.Obj
       [ ("magic", Json.Str "hlpower-snapshot");
         ("version", Json.Int version);
         ("recipe", Json.Str recipe) ])

let trailer n = frame_json (Json.Obj [ ("entries", Json.Int n) ])

let test_snapshot_version_and_recipe_wall () =
  Telemetry.enable ();
  let vc = Telemetry.counter "server.snapshot.version_mismatch" in
  let rc = Telemetry.counter "server.snapshot.recipe_mismatch" in
  let cold = Telemetry.counter "server.snapshot.cold_starts" in
  let v0 = Telemetry.count vc in
  let r0 = Telemetry.count rc in
  let c0 = Telemetry.count cold in
  let path = temp "wall" in
  let svc = Service.create () in
  write_file path
    (header ~version:(Service.snapshot_version + 1)
       ~recipe:Service.snapshot_recipe
    ^ trailer 0);
  (match Service.load_snapshot svc ~path with
  | `Cold "version-mismatch" -> ()
  | `Cold why -> Alcotest.failf "wrong cold reason: %s" why
  | `Restored _ -> Alcotest.fail "restored under version skew");
  write_file path
    (header ~version:Service.snapshot_version ~recipe:"fnv64:not-this-recipe"
    ^ trailer 0);
  (match Service.load_snapshot svc ~path with
  | `Cold "recipe-mismatch" -> ()
  | `Cold why -> Alcotest.failf "wrong cold reason: %s" why
  | `Restored _ -> Alcotest.fail "restored under recipe skew");
  (* a compatible empty snapshot is a clean zero-entry restore *)
  write_file path
    (header ~version:Service.snapshot_version ~recipe:Service.snapshot_recipe
    ^ trailer 0);
  (match Service.load_snapshot svc ~path with
  | `Restored 0 -> ()
  | `Restored n -> Alcotest.failf "phantom entries: %d" n
  | `Cold why -> Alcotest.failf "empty snapshot went cold: %s" why);
  Alcotest.(check int) "version skew counted" 1 (Telemetry.count vc - v0);
  Alcotest.(check int) "recipe skew counted" 1 (Telemetry.count rc - r0);
  Alcotest.(check int) "both walls were cold starts" 2
    (Telemetry.count cold - c0);
  Sys.remove path

let test_snapshot_trailer_count_wall () =
  (* a trailer that overcounts the entries present must not restore *)
  let bytes, _, saved = Lazy.force pristine in
  let path = temp "trailer" in
  (* drop the trailer record and append one claiming an extra entry *)
  write_file path
    (header ~version:Service.snapshot_version ~recipe:Service.snapshot_recipe
    ^ trailer (saved + 1));
  let svc = Service.create () in
  (match Service.load_snapshot svc ~path with
  | `Cold _ -> ()
  | `Restored n -> Alcotest.failf "trailer overcount restored %d" n);
  ignore bytes;
  Sys.remove path

let qcheck_snapshot_corruption =
  QCheck.Test.make ~count:50
    ~name:"corrupted snapshot self-heals to cold start, never a wrong byte"
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (n, truncate) ->
      let bytes, reference, _ = Lazy.force pristine in
      let len = String.length bytes in
      let corrupted =
        if truncate then String.sub bytes 0 (n mod len)
        else begin
          let b = Bytes.of_string bytes in
          let bit = n mod (len * 8) in
          let i = bit / 8 in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
          Bytes.to_string b
        end
      in
      let path = temp "corrupt" in
      write_file path corrupted;
      let svc = Service.create ~cooldown_s:0.01 () in
      (* must never raise, whatever the damage *)
      let outcome = Service.load_snapshot svc ~path in
      (* whatever was (not) restored, serving must produce the same
         bytes a cold compute does — the differential wall *)
      let r =
        parse_ok "post-corruption serve" (Service.handle svc (mk_ctx ()) est_req)
      in
      let served = result_bytes "post-corruption serve" r in
      Sys.remove path;
      (match outcome with `Cold _ | `Restored _ -> ());
      String.equal served reference)

(* --- watchdog: real children via /bin/sh --- *)

let sh cmd () =
  Unix.create_process "/bin/sh" [| "sh"; "-c"; cmd |] Unix.stdin Unix.stdout
    Unix.stderr

let test_watchdog_flap_breaker () =
  let events = ref [] in
  let starts = ref 0 in
  let start () =
    incr starts;
    sh "exit 3" ()
  in
  let r =
    Supervisor.watch ~probe_every_s:0.02 ~backoff_base_s:0.004
      ~backoff_cap_s:0.01 ~flap_window_s:30.0 ~flap_max:2 ~grace_s:0.5 ~seed:7
      ~on_event:(fun e -> events := e :: !events)
      ~start ()
  in
  (match r with
  | `Gave_up n -> Alcotest.(check int) "three restarts in the window" 3 n
  | `Drained -> Alcotest.fail "flap breaker never tripped");
  Alcotest.(check int) "three incarnations started" 3 !starts;
  let evs = List.rev !events in
  let crashes =
    List.filter
      (function Supervisor.Wd_exited (_, "exit 3") -> true | _ -> false)
      evs
  in
  Alcotest.(check int) "every crash recorded with its status" 3
    (List.length crashes);
  let backoffs =
    List.filter (function Supervisor.Wd_restarting _ -> true | _ -> false) evs
  in
  Alcotest.(check int) "two backoff sleeps before giving up" 2
    (List.length backoffs);
  Alcotest.(check bool) "give-up recorded" true
    (List.exists
       (function Supervisor.Wd_gave_up 3 -> true | _ -> false)
       evs)

let test_watchdog_wedge_detect () =
  let events = ref [] in
  let r =
    Supervisor.watch
      ~probe:(fun () -> false)
      ~probe_every_s:0.02 ~probe_misses:3 ~backoff_base_s:0.004
      ~backoff_cap_s:0.01 ~flap_window_s:30.0 ~flap_max:1 ~grace_s:1.0 ~seed:5
      ~on_event:(fun e -> events := e :: !events)
      ~start:(sh "sleep 30") ()
  in
  (match r with
  | `Gave_up 2 -> ()
  | `Gave_up n -> Alcotest.failf "gave up after %d restarts" n
  | `Drained -> Alcotest.fail "wedge never detected");
  Alcotest.(check bool) "probe timeout recorded at the miss budget" true
    (List.exists
       (function Supervisor.Wd_probe_timeout (_, 3) -> true | _ -> false)
       !events);
  (* the wedged child really was terminated: the induced crash is
     recorded as such, carrying the kill status *)
  Alcotest.(check bool) "induced kill recorded as a wedge crash" true
    (List.exists
       (function
         | Supervisor.Wd_exited (_, st) ->
             String.length st >= 7 && String.sub st 0 7 = "wedged,"
         | _ -> false)
       !events)

let test_watchdog_drain () =
  let token = Guard.token ~name:"test_watchdog_drain" () in
  let events = ref [] in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.3;
        Guard.cancel token)
  in
  let r =
    Supervisor.watch ~probe_every_s:0.02 ~grace_s:2.0 ~seed:3 ~token
      ~on_event:(fun e -> events := e :: !events)
      ~start:(sh "sleep 30") ()
  in
  Domain.join canceller;
  (match r with
  | `Drained -> ()
  | `Gave_up n -> Alcotest.failf "drain turned into give-up (%d)" n);
  Alcotest.(check bool) "SIGTERM propagation recorded" true
    (List.exists
       (function Supervisor.Wd_draining _ -> true | _ -> false)
       !events);
  match
    List.find_opt
      (function Supervisor.Wd_drained _ -> true | _ -> false)
      !events
  with
  | Some (Supervisor.Wd_drained (pid, _st)) -> (
      (* reaped: a second wait must find no such child *)
      match Unix.waitpid [] pid with
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ()
      | _ -> Alcotest.fail "drained child was not reaped")
  | _ -> Alcotest.fail "no drained event recorded"

let test_watchdog_event_json () =
  let j =
    Supervisor.watchdog_event_json (Supervisor.Wd_exited (42, "signal SIGKILL"))
  in
  (match (Json.member "event" j, Json.member "pid" j, Json.member "status" j) with
  | Some (Json.Str "exited"), Some (Json.Int 42), Some (Json.Str "signal SIGKILL")
    ->
      ()
  | _ -> Alcotest.failf "exited event shape: %s" (Json.to_string ~compact:true j));
  match Json.member "event" (Supervisor.watchdog_event_json (Supervisor.Wd_gave_up 6)) with
  | Some (Json.Str "gave-up") -> ()
  | _ -> Alcotest.fail "gave-up event name"

(* --- memory-pressure admission through an injected RSS source --- *)

let test_memory_pressure_policy () =
  Telemetry.enable ();
  let rss = Atomic.make 1_000 in
  Memstat.with_source
    (fun () -> Some (Atomic.get rss))
    (fun () ->
      let knobs =
        Atomic.make
          {
            Server.default_knobs with
            Server.mem_soft_bytes = Some 10_000;
            mem_hard_bytes = Some 20_000;
          }
      in
      let path = fresh_socket () in
      let token = Guard.token ~name:"test_mem_pressure" () in
      let ready = Atomic.make false in
      let service = Service.create ~cooldown_s:0.05 () in
      let soft_calls = Atomic.make 0 in
      let trimmed = Atomic.make 0 in
      let srv =
        Domain.spawn (fun () ->
            Server.serve ~knobs ~mem_sample_every_s:0.01
              ~on_memory_soft:(fun () ->
                Atomic.incr soft_calls;
                ignore
                  (Atomic.fetch_and_add trimmed (Service.trim service)))
              ~overload:Service.overload_response ~token
              ~on_ready:(fun () -> Atomic.set ready true)
              ~path (Service.handle service))
      in
      eventually "server ready" (fun () -> Atomic.get ready);
      Fun.protect
        ~finally:(fun () ->
          Guard.cancel token;
          Domain.join srv)
        (fun () ->
          let conn = Server.connect path in
          (* fill the estimate cache so soft pressure has prey *)
          ignore
            (parse_ok "fill 1"
               (Server.request conn
                  (Service.estimate_request ~id:1 ~circuit:"adder" ~width:4 ())));
          ignore
            (parse_ok "fill 2"
               (Server.request conn
                  (Service.estimate_request ~id:2 ~circuit:"adder" ~width:5 ())));
          (* soft budget: relief callback evicts, requests still served *)
          Atomic.set rss 15_000;
          eventually "soft relief evicted something" (fun () ->
              Atomic.get soft_calls > 0 && Atomic.get trimmed > 0);
          let r =
            parse_ok "served under soft pressure"
              (Server.request conn (Service.ping_request ~id:3 ()))
          in
          Alcotest.(check bool) "soft pressure still serves" true r.Service.ok;
          (* hard budget: typed Overloaded sheds, connection survives *)
          Atomic.set rss 25_000;
          let shed = ref None in
          eventually "hard-pressure shed" (fun () ->
              let r =
                parse_ok "hard probe"
                  (Server.request conn (Service.ping_request ~id:4 ()))
              in
              if r.Service.ok then false
              else begin
                shed := Some r;
                true
              end);
          (match !shed with
          | Some { Service.error = Some (cls, _, _); _ } ->
              Alcotest.(check string) "shed is the typed overload class"
                "overloaded" cls
          | _ -> Alcotest.fail "no typed shed captured");
          (* pressure recedes: the same connection serves again *)
          Atomic.set rss 1_000;
          eventually "recovered after pressure receded" (fun () ->
              (parse_ok "recovery probe"
                 (Server.request conn (Service.ping_request ~id:5 ())))
                .Service.ok);
          Alcotest.(check bool) "hard sheds counted" true
            (Telemetry.count (Telemetry.counter "server.memory.hard_sheds") > 0);
          Server.close conn))

(* --- knobs: validation and hot reload on a live connection --- *)

let test_knob_validation () =
  (match Server.validate_knobs { Server.default_knobs with Server.queue_budget = 0 } with
  | () -> Alcotest.fail "zero queue budget accepted"
  | exception Err.Error (Err.Invalid_input _) -> ());
  (match
     Server.validate_knobs
       {
         Server.default_knobs with
         Server.mem_soft_bytes = Some 10;
         mem_hard_bytes = Some 5;
       }
   with
  | () -> Alcotest.fail "soft budget above hard accepted"
  | exception Err.Error (Err.Invalid_input _) -> ());
  match
    Server.validate_knobs
      { Server.default_knobs with Server.deadline_s = Some (-1.0) }
  with
  | () -> Alcotest.fail "negative deadline accepted"
  | exception Err.Error (Err.Invalid_input _) -> ()

let test_knob_hot_reload_live_connection () =
  let knobs = Atomic.make Server.default_knobs in
  (* the handler reports whether its per-request guard carries a
     deadline — the directly observable effect of a deadline reload *)
  let handler (ctx : Server.ctx) _req =
    match Guard.remaining_s ctx.Server.guard with
    | None -> "unbounded"
    | Some _ -> "bounded"
  in
  let path = fresh_socket () in
  let token = Guard.token ~name:"test_knob_reload" () in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.serve ~knobs ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path handler)
  in
  eventually "server ready" (fun () -> Atomic.get ready);
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () ->
      let conn = Server.connect path in
      Alcotest.(check string) "before reload: no deadline" "unbounded"
        (Server.request conn "probe");
      Server.set_knobs knobs
        { (Atomic.get knobs) with Server.deadline_s = Some 2.5 };
      (* same connection — no drop, no reconnect — sees the new knobs *)
      eventually "reload reaches requests on the live connection" (fun () ->
          String.equal (Server.request conn "probe") "bounded");
      Server.set_knobs knobs
        { (Atomic.get knobs) with Server.deadline_s = None };
      eventually "second reload also lands" (fun () ->
          String.equal (Server.request conn "probe") "unbounded");
      Server.close conn)

(* --- client restart rides --- *)

let test_client_rides_restart () =
  Telemetry.enable ();
  let path = fresh_socket () in
  let token = Guard.token ~name:"test_restart_ride" () in
  let ready = Atomic.make false in
  let service = Service.create ~cooldown_s:0.05 () in
  (* the daemon comes up only after a delay — to the client this is
     exactly what a supervised restart looks like: no socket, refused
     connects, then a fresh listener *)
  let srv =
    Domain.spawn (fun () ->
        Unix.sleepf 0.4;
        Server.serve ~overload:Service.overload_response ~token
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path (Service.handle service))
  in
  Fun.protect
    ~finally:(fun () ->
      Guard.cancel token;
      Domain.join srv)
    (fun () ->
      let rides = Telemetry.counter "client.restart_rides" in
      let before = Telemetry.count rides in
      (* max_retries 0: any charged retry fails the request, so success
         proves the connect exhaustions rode free under the deadline *)
      let client =
        Server.Client.create ~seed:11 ~max_retries:0 ~backoff_base_s:0.005
          ~backoff_cap_s:0.02 ~connect_wait_s:0.05 ~request_timeout_s:8.0 path
      in
      let r =
        parse_ok "request across the restart window"
          (Server.Client.request client (Service.ping_request ~id:9 ()))
      in
      Alcotest.(check bool) "served once the daemon came up" true r.Service.ok;
      Alcotest.(check bool) "the rides were counted" true
        (Telemetry.count rides > before);
      Server.Client.close client)

let suite =
  [
    Alcotest.test_case "netcache: second-chance eviction spares hit entries"
      `Quick test_netcache_second_chance;
    Alcotest.test_case "netcache: clear/evict audit trail" `Quick
      test_netcache_eviction_audit;
    Alcotest.test_case "snapshot: restore serves byte-identical warm hits"
      `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot: version and recipe walls" `Quick
      test_snapshot_version_and_recipe_wall;
    Alcotest.test_case "snapshot: trailer count wall" `Quick
      test_snapshot_trailer_count_wall;
    QCheck_alcotest.to_alcotest qcheck_snapshot_corruption;
    Alcotest.test_case "watchdog: restarts crashes, flap breaker gives up"
      `Quick test_watchdog_flap_breaker;
    Alcotest.test_case "watchdog: wedged child detected and terminated" `Quick
      test_watchdog_wedge_detect;
    Alcotest.test_case "watchdog: token cancel drains the child" `Quick
      test_watchdog_drain;
    Alcotest.test_case "watchdog: supervision journal event shapes" `Quick
      test_watchdog_event_json;
    Alcotest.test_case "memory pressure: soft trims, hard sheds, recovers"
      `Quick test_memory_pressure_policy;
    Alcotest.test_case "knobs: validation walls" `Quick test_knob_validation;
    Alcotest.test_case "knobs: hot reload lands on a live connection" `Quick
      test_knob_hot_reload_live_connection;
    Alcotest.test_case "client: restart rides under the request deadline"
      `Quick test_client_rides_restart;
  ]
