(* Differential test wall for the compiled struct-of-arrays replay kernel.

   The contract under test: Engine.Compiled is {e bit-identical} to the
   engines it replaces — every per-node toggle and high counter, every
   output word, the total and per-lane switched-capacitance floats, the
   Monte Carlo estimates (including after checkpoint/resume and after a
   SIGKILL mid-run), and the sampling estimators. Plus the compile-step
   obligations: the fingerprint cache shares plans physically, the
   levelization edge cases (zero-fanin constant gates, dangling nodes)
   survive compilation, the degradation chain lands on Scalar when the
   kernel cannot apply, and the fault-injection point trips inside the
   compiled step like it does inside the interpreters. *)

open Hlp_logic
open Hlp_sim

module P = Hlp_power.Probprop

let lanes = Kernel.lanes
let bits = Int64.bits_of_float

let float_bits_equal name a b =
  Alcotest.(check int64) (name ^ " bits") (bits a) (bits b)

(* --- step differential: Kernel vs Bitsim, word-for-word --- *)

let random_words rng nin =
  Array.init nin (fun _ -> Int64.to_int (Hlp_util.Prng.bits64 rng))

(* Drive a Bitsim and a compiled kernel with identical word stimuli and
   require every observable to match exactly (floats compared by bits). *)
let kernel_agrees net ~steps ~seed =
  let nin = Array.length net.Netlist.inputs in
  let rng = Hlp_util.Prng.create seed in
  let bit = Bitsim.create ~track_lanes:true net in
  let ker = Kernel.create ~track_lanes:true (Kernel.compile net) in
  let ok = ref true in
  let n = Netlist.num_nodes net in
  for _ = 1 to steps do
    let words = random_words rng nin in
    Bitsim.step bit words;
    Kernel.step ker words;
    for i = 0 to n - 1 do
      if Bitsim.value bit i <> Kernel.value ker i then ok := false
    done
  done;
  ok := !ok && Bitsim.toggle_counts bit = Kernel.toggle_counts ker;
  ok := !ok && Bitsim.high_counts bit = Kernel.high_counts ker;
  ok :=
    !ok
    && bits (Bitsim.switched_capacitance bit)
       = bits (Kernel.switched_capacitance ker);
  let lb = Bitsim.lane_switched_capacitance bit in
  let lk = Kernel.lane_switched_capacitance ker in
  ok := !ok && Array.for_all2 (fun a b -> bits a = bits b) lb lk;
  ok := !ok && Bitsim.output_words bit = Kernel.output_words ker;
  ok := !ok && Bitsim.cycles bit = Kernel.cycles ker;
  !ok

let qcheck_step_differential =
  QCheck.Test.make ~count:60
    ~name:
      "compiled kernel matches bitsim word-for-word (values, toggles, highs, \
       caps, lanes)"
    (QCheck.pair Test_bitsim.arb_netlist QCheck.small_nat)
    (fun ((_, net), seed) -> kernel_agrees net ~steps:5 ~seed:(seed + 1))

let test_step_differential_sequential () =
  Alcotest.(check bool)
    "kernel matches bitsim on a sequential circuit" true
    (kernel_agrees (Test_bitsim.sequential_net ()) ~steps:50 ~seed:7)

let test_reset_state () =
  (* registers come up at their init value, broadcast across lanes, and the
     first step latches the reset state (not garbage from an empty
     previous cycle) *)
  let b = Netlist.Builder.create () in
  let q = Netlist.Builder.dff_feedback ~init:true b (fun q -> Netlist.Builder.not_ b q) in
  Netlist.Builder.output b "q" q;
  let net = Netlist.Builder.finish b in
  let ker = Kernel.create (Kernel.compile net) in
  let bit = Bitsim.create net in
  Alcotest.(check int) "init broadcast" (Bitsim.value bit q) (Kernel.value ker q);
  Alcotest.(check bool) "init=true is all ones" true (Kernel.value ker q = -1);
  Alcotest.(check bool) "toggles from reset" true
    (kernel_agrees net ~steps:10 ~seed:1)

(* --- scalar lane: the kernel vs the reference Funcsim --- *)

let test_scalar_variant_combinational () =
  let net = Generators.adder_circuit 6 in
  let nin = Array.length net.Netlist.inputs in
  let rng = Hlp_util.Prng.create 41 in
  let ker = Kernel.create ~track_lanes:true (Kernel.compile net) in
  let fsim = Funcsim.create net in
  for _ = 1 to 40 do
    let vec = Array.init nin (fun _ -> Hlp_util.Prng.bool rng) in
    Funcsim.step fsim vec;
    Kernel.step_scalar ker vec;
    for i = 0 to Netlist.num_nodes net - 1 do
      Alcotest.(check bool) "node value" (Funcsim.value fsim i)
        (Kernel.value_bool ker i)
    done
  done;
  (* lanes 1.. see constant-zero inputs: on a combinational circuit they
     never toggle after reset, so the kernel's counters are pure lane 0 *)
  Alcotest.(check (array int)) "toggles equal funcsim"
    (Funcsim.toggle_counts fsim) (Kernel.toggle_counts ker);
  (* lane 0's accumulator adds the same capacitances in the same order as
     the scalar simulator -> exactly equal *)
  float_bits_equal "lane 0 switched capacitance"
    (Funcsim.switched_capacitance fsim)
    (Kernel.lane_switched_capacitance ker).(0)

let test_scalar_variant_sequential () =
  let net = Test_bitsim.sequential_net () in
  let nin = Array.length net.Netlist.inputs in
  let rng = Hlp_util.Prng.create 42 in
  let ker = Kernel.create ~track_lanes:true (Kernel.compile net) in
  let fsim = Funcsim.create net in
  for _ = 1 to 60 do
    let vec = Array.init nin (fun _ -> Hlp_util.Prng.bool rng) in
    Funcsim.step fsim vec;
    Kernel.step_scalar ker vec;
    for i = 0 to Netlist.num_nodes net - 1 do
      Alcotest.(check bool) "node value" (Funcsim.value fsim i)
        (Kernel.value_bool ker i)
    done
  done;
  float_bits_equal "lane 0 switched capacitance"
    (Funcsim.switched_capacitance fsim)
    (Kernel.lane_switched_capacitance ker).(0)

(* --- trace replay: Parsim with Engine.Compiled --- *)

let bool_trace net ~n ~seed =
  let nin = Array.length net.Netlist.inputs in
  let rng = Hlp_util.Prng.create seed in
  Array.init n (fun _ -> Array.init nin (fun _ -> Hlp_util.Prng.bool rng))

let replay_equal net ~n ~seed =
  let trace = bool_trace net ~n ~seed in
  let vector i = trace.(i) in
  let rb = Parsim.replay ~engine:Engine.Bitparallel net ~vector ~n in
  let rk = Parsim.replay ~engine:Engine.Compiled net ~vector ~n in
  rb.Parsim.out_words = rk.Parsim.out_words
  && Array.for_all2
       (fun a b -> bits a = bits b)
       rb.Parsim.transition_caps rk.Parsim.transition_caps

let qcheck_replay_differential =
  QCheck.Test.make ~count:25
    ~name:"compiled replay is bit-identical to bitparallel replay"
    (QCheck.pair Test_bitsim.arb_netlist (QCheck.int_range 1 200))
    (fun ((_, net), n) -> replay_equal net ~n ~seed:(n + 3))

let test_replay_edge_lengths () =
  (* chunk-boundary arithmetic: below, at, and just past lane multiples *)
  let net = Generators.adder_circuit 4 in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "n=%d bit-identical" n)
        true
        (replay_equal net ~n ~seed:n))
    [ 1; 2; lanes - 1; lanes; lanes + 1; (2 * lanes) - 1; 2 * lanes ]

let test_replay_rejects_sequential () =
  let net = Test_bitsim.sequential_net () in
  let vector _ = [| true |] in
  match Parsim.replay ~engine:Engine.Compiled net ~vector ~n:10 with
  | _ -> Alcotest.fail "expected Invalid_argument for a sequential netlist"
  | exception Invalid_argument _ -> ()

(* --- Monte Carlo: byte-identical estimates --- *)

let test_mc_compiled_equals_bitparallel () =
  let run engine = Test_durability.units_mc ~engine () in
  Test_durability.check_mc_identical "combinational multiplier"
    (run Engine.Bitparallel) (run Engine.Compiled)

let test_mc_compiled_equals_bitparallel_sequential () =
  let net = Test_bitsim.sequential_net () in
  let run engine =
    P.monte_carlo ~batch:4 ~relative_precision:1e-6 ~max_cycles:(8 * 4 * lanes)
      ~seed:13 ~engine net
  in
  Test_durability.check_mc_identical "sequential counter"
    (run Engine.Bitparallel) (run Engine.Compiled)

(* --- golden-value pins: hex IEEE-754 bits on fixed circuits and seeds ---

   Each pin is the exact bit pattern of the Monte Carlo estimate on a
   fixed (circuit, seed, budget). Any change to PRNG streams, accounting
   order, or engine arithmetic shows up as a changed pin. Refresh by
   running the test binary with HLP_PRINT_PINS=1. *)

let pin_circuits () =
  [ ("adder8", Generators.adder_circuit 8);
    ("alu4", Generators.alu_circuit 4);
    ("mult4", Generators.multiplier_circuit 4) ]

let pin_seeds = [ 7; 31 ]

let pinned_mc ~engine ~seed net =
  P.monte_carlo ~batch:4 ~relative_precision:1e-6 ~max_cycles:(6 * 4 * lanes)
    ~seed ~engine net

let compiled_pins =
  [ ("adder8", 7, 0x4057b31cfc7a7253L);
    ("adder8", 31, 0x40578c865dbb3108L);
    ("alu4", 7, 0x405ccd532a87fdd7L);
    ("alu4", 31, 0x405c5982d82d82d8L);
    ("mult4", 7, 0x406242f4e4a39f90L);
    ("mult4", 31, 0x40621f070b1b5c61L) ]

let scalar_pins =
  [ ("adder8", 7, 0x4057ed3f258beecbL);
    ("adder8", 31, 0x405817ba06d39cf0L);
    ("alu4", 7, 0x405c58cccccccb05L);
    ("alu4", 31, 0x405d5a1eb851e983L);
    ("mult4", 7, 0x40628b6b851eb69aL);
    ("mult4", 31, 0x40631a2740da727dL) ]

let scalar_pinned_mc ~seed net =
  P.monte_carlo ~batch:20 ~relative_precision:1e-6 ~max_cycles:480 ~seed
    ~engine:Engine.Scalar net

let print_pins_if_requested () =
  if Sys.getenv_opt "HLP_PRINT_PINS" = Some "1" then begin
    List.iter
      (fun (name, net) ->
        List.iter
          (fun seed ->
            let c = pinned_mc ~engine:Engine.Compiled ~seed net in
            let s = scalar_pinned_mc ~seed net in
            Printf.printf "compiled %s %d 0x%LxL\nscalar %s %d 0x%LxL\n" name
              seed (bits c.P.estimate) name seed (bits s.P.estimate))
          pin_seeds)
      (pin_circuits ());
    exit 0
  end

let check_pins what pins run =
  let nets = pin_circuits () in
  List.iter
    (fun (name, seed, pinned) ->
      let net = List.assoc name nets in
      let got = bits (run ~seed net).P.estimate in
      Alcotest.(check int64)
        (Printf.sprintf "%s %s seed=%d" what name seed)
        pinned got)
    pins

let test_golden_pins_compiled () =
  check_pins "compiled" compiled_pins (pinned_mc ~engine:Engine.Compiled);
  (* the bitparallel engine must sit on the same pins: same streams, same
     accounting *)
  check_pins "bitparallel" compiled_pins (pinned_mc ~engine:Engine.Bitparallel)

let test_golden_pins_scalar () =
  check_pins "scalar" scalar_pins (fun ~seed net -> scalar_pinned_mc ~seed net)

(* --- levelization edge cases: constants and dangling nodes --- *)

let test_const_gates () =
  (* zero-fanin constant drivers at level 0; a gate fed only by constants
     sits at level 1, settles once, and never toggles *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.input b in
  let t = Netlist.Builder.const_ b true in
  let f = Netlist.Builder.const_ b false in
  let g1 = Netlist.Builder.and_ b [ x; t ] in
  let g2 = Netlist.Builder.or_ b [ g1; f ] in
  let g3 = Netlist.Builder.xor_ b t f in
  Netlist.Builder.output b "y" g2;
  Netlist.Builder.output b "z" g3;
  let net = Netlist.Builder.finish b in
  let lv = Netlist.comb_levels net in
  Alcotest.(check int) "const true at level 0" 0 lv.(t);
  Alcotest.(check int) "const false at level 0" 0 lv.(f);
  Alcotest.(check int) "const-fed gate at level 1" 1 lv.(g3);
  Alcotest.(check bool) "differential with constants" true
    (kernel_agrees net ~steps:20 ~seed:3);
  let ker = Kernel.create (Kernel.compile net) in
  Kernel.step ker [| -1 |];
  Kernel.step ker [| 0 |];
  Alcotest.(check int) "xor(1,0) broadcast" (-1) (Kernel.value ker g3);
  Alcotest.(check int) "const-fed gate never toggles" 0
    (Kernel.toggle_counts ker).(g3)

let test_dangling_nodes () =
  (* a gate with no consumers and no output port still switches (and still
     burns capacitance): it must be levelized, scheduled, and accounted *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.input b in
  let y = Netlist.Builder.input b in
  let dangling = Netlist.Builder.xor_ b x y in
  let z = Netlist.Builder.and_ b [ x; y ] in
  Netlist.Builder.output b "z" z;
  let net = Netlist.Builder.finish b in
  Alcotest.(check int) "dangling gate levelized" 1
    (Netlist.comb_levels net).(dangling);
  Alcotest.(check bool) "differential with dangling gate" true
    (kernel_agrees net ~steps:20 ~seed:5);
  let ker = Kernel.create (Kernel.compile net) in
  Kernel.step ker [| -1; 0 |];
  Kernel.step ker [| 0; 0 |];
  Alcotest.(check bool) "dangling gate toggles" true
    ((Kernel.toggle_counts ker).(dangling) > 0)

let test_no_gates () =
  (* inputs wired straight to outputs: zero slots, zero levels, and the
     step is latch + drive + account only *)
  let b = Netlist.Builder.create () in
  let x = Netlist.Builder.input b in
  Netlist.Builder.output b "x" x;
  let net = Netlist.Builder.finish b in
  let plan = Kernel.compile net in
  let st = Kernel.stats plan in
  Alcotest.(check int) "no slots" 0 st.Kernel.slots;
  Alcotest.(check int) "no levels" 0 st.Kernel.levels;
  Alcotest.(check bool) "differential with no gates" true
    (kernel_agrees net ~steps:10 ~seed:2)

let test_no_inputs () =
  (* a closed sequential circuit (oscillator): no primary inputs at all *)
  let b = Netlist.Builder.create () in
  let q =
    Netlist.Builder.dff_feedback b (fun q -> Netlist.Builder.not_ b q)
  in
  Netlist.Builder.output b "q" q;
  let net = Netlist.Builder.finish b in
  Alcotest.(check bool) "differential with no inputs" true
    (kernel_agrees net ~steps:20 ~seed:9)

(* --- the fingerprint-keyed plan cache --- *)

let test_plan_cache () =
  Test_durability.with_telemetry @@ fun () ->
  Kernel.clear_cache ();
  let hits () = Hlp_util.Telemetry.count (Hlp_util.Telemetry.counter "kernel.cache_hits") in
  let misses () = Hlp_util.Telemetry.count (Hlp_util.Telemetry.counter "kernel.cache_misses") in
  let h0 = hits () and m0 = misses () in
  let net1 = Generators.adder_circuit 5 in
  let net2 = Generators.adder_circuit 5 in
  let p1 = Kernel.of_netlist net1 in
  let p2 = Kernel.of_netlist net2 in
  (* a structurally equal netlist, rebuilt from scratch, shares the plan
     physically — compile once, replay many *)
  Alcotest.(check bool) "rebuilt netlist hits the cache" true (p1 == p2);
  Alcotest.(check int) "one miss" (m0 + 1) (misses ());
  Alcotest.(check int) "one hit" (h0 + 1) (hits ());
  (* a custom capacitance table is not in the fingerprint: bypass *)
  let p3 = Kernel.of_netlist ~caps:(Netlist.node_capacitance net1) net1 in
  Alcotest.(check bool) "caps bypasses the cache" true (p3 != p1);
  Alcotest.(check int) "bypass is not a hit" (h0 + 1) (hits ());
  (* a different structure misses *)
  let p4 = Kernel.of_netlist (Generators.adder_circuit 6) in
  Alcotest.(check bool) "different structure, different plan" true (p4 != p1);
  Alcotest.(check int) "second miss" (m0 + 2) (misses ());
  Kernel.clear_cache ();
  ignore (Kernel.of_netlist net1);
  Alcotest.(check int) "clear forces a recompile" (m0 + 3) (misses ())

(* --- degradation and fault injection --- *)

let test_degradation_chain () =
  Alcotest.(check bool) "compiled chain" true
    (Parsim.degradation_chain Engine.Compiled
    = [ Engine.Compiled; Engine.Bitparallel; Engine.Scalar ])

let test_replay_guarded_degrades_to_scalar () =
  (* a sequential net cannot be chunk-replayed: Compiled fails, Bitparallel
     fails, Scalar answers — two fallbacks, right result *)
  let net = Test_bitsim.sequential_net () in
  let trace = bool_trace net ~n:40 ~seed:21 in
  let vector i = trace.(i) in
  match Parsim.replay_guarded ~engine:Engine.Compiled net ~vector ~n:40 with
  | Error e -> Alcotest.failf "unexpected error: %s" (Hlp_util.Err.to_string e)
  | Ok d ->
      Alcotest.(check bool) "landed on scalar" true
        (d.Parsim.engine_used = Engine.Scalar);
      Alcotest.(check int) "two fallbacks" 2 d.Parsim.fallbacks;
      let direct = Parsim.replay ~engine:Engine.Scalar net ~vector ~n:40 in
      Alcotest.(check bool) "scalar result" true (d.Parsim.value = direct)

let test_faultinject_gate_eval () =
  Hlp_util.Faultinject.with_faults ~rate:1.0 [ Hlp_util.Faultinject.Gate_eval ]
    (fun () ->
      let ker = Kernel.create (Kernel.compile (Generators.adder_circuit 4)) in
      (match Kernel.step ker (Array.make 8 0) with
      | () -> Alcotest.fail "expected the injected fault to raise"
      | exception _ -> ());
      Alcotest.(check bool) "firing counted" true
        (Hlp_util.Faultinject.fired Hlp_util.Faultinject.Gate_eval >= 1))

(* --- checkpoint/resume: the compiled engine under the durability
       contract (journaling identical to the bit-parallel engine) --- *)

exception Crash

let compiled_mc ?checkpoint () =
  Test_durability.units_mc ~engine:Engine.Compiled ?checkpoint ()

let test_compiled_checkpoint_passive () =
  let path = Test_durability.temp "kernel_passive" in
  let plain = compiled_mc () in
  let journaled = compiled_mc ~checkpoint:(P.checkpoint path) () in
  Test_durability.check_mc_identical "journaled vs plain" plain journaled;
  let resumed = compiled_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
  Test_durability.check_mc_identical "resume after completion" plain resumed;
  Sys.remove path

let test_compiled_resume_after_interrupt () =
  let plain = compiled_mc () in
  List.iter
    (fun at ->
      let path = Test_durability.temp "kernel_interrupt" in
      let count = ref 0 in
      let ck =
        P.checkpoint
          ~on_batch:(fun _ ->
            incr count;
            if !count = at then raise Crash)
          path
      in
      (match compiled_mc ~checkpoint:ck () with
      | _ -> Alcotest.fail "expected the interruption to fire"
      | exception Crash -> ());
      let resumed =
        compiled_mc ~checkpoint:(P.checkpoint ~resume:true path) ()
      in
      Test_durability.check_mc_identical
        (Printf.sprintf "compiled interrupted at %d" at)
        plain resumed;
      Sys.remove path)
    [ 1; 4; 9 ]

let test_compiled_sigkill_resume () =
  let plain = compiled_mc () in
  List.iter
    (fun kill_at ->
      let path = Test_durability.temp "kernel_sigkill" in
      let code =
        Test_durability.sigkill_child ~engine:"compiled" ~kill_at path
      in
      Alcotest.(check int)
        (Printf.sprintf "child killed by SIGKILL at unit %d" kill_at)
        137 code;
      let resumed =
        compiled_mc ~checkpoint:(P.checkpoint ~resume:true path) ()
      in
      Test_durability.check_mc_identical
        (Printf.sprintf "compiled SIGKILL at unit %d" kill_at)
        plain resumed;
      Sys.remove path)
    [ 1; 5 ]

let test_compiled_cross_engine_resume () =
  Test_durability.with_telemetry @@ fun () ->
  (* a journal written under bitparallel, resumed under compiled: unit
     means are a pure function of (seed, unit index) and bit-identical
     across the unit engines, so the header binds the record format only
     and the campaign genuinely resumes — no self-heal, journaled units
     reused *)
  let path = Test_durability.temp "kernel_header" in
  let count = ref 0 in
  let ck =
    P.checkpoint
      ~on_batch:(fun _ ->
        incr count;
        if !count = 3 then raise Crash)
      path
  in
  (match Test_durability.units_mc ~engine:Engine.Bitparallel ~checkpoint:ck () with
  | _ -> Alcotest.fail "expected the interruption to fire"
  | exception Crash -> ());
  let plain = compiled_mc () in
  let resumed = compiled_mc ~checkpoint:(P.checkpoint ~resume:true path) () in
  Test_durability.check_mc_identical "cross-engine resume = plain compiled run"
    plain resumed;
  Alcotest.(check bool) "resume counted, not healed" true
    (Hlp_util.Telemetry.count
       (Hlp_util.Telemetry.counter "probprop.ck_resumes")
     >= 1
    && Hlp_util.Telemetry.count
         (Hlp_util.Telemetry.counter "probprop.ck_header_mismatches")
       = 0);
  Sys.remove path

let qcheck_compiled_resume_any_truncation =
  let full_journal =
    lazy
      (let path = Test_durability.temp "kernel_cut_src" in
       ignore (compiled_mc ~checkpoint:(P.checkpoint path) ());
       let raw = Test_durability.read_file path in
       Sys.remove path;
       raw)
  in
  QCheck.Test.make
    ~name:"compiled resume is byte-identical after truncation at any offset"
    ~count:12
    QCheck.(int_bound 1_000_000)
    (fun cut_sel ->
      let raw = Lazy.force full_journal in
      let plain = compiled_mc () in
      let cut = cut_sel mod (String.length raw + 1) in
      let path = Test_durability.temp "kernel_cut" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      Test_durability.write_file path (String.sub raw 0 cut);
      let resumed =
        compiled_mc ~checkpoint:(P.checkpoint ~resume:true path) ()
      in
      bits resumed.P.estimate = bits plain.P.estimate
      && resumed.P.cycles_used = plain.P.cycles_used
      && resumed.P.batch_means = plain.P.batch_means)

(* --- sampling estimators under the compiled engine --- *)

let test_sampling_compiled_engine () =
  let ts = Test_bitsim.pinned_cosim Engine.Scalar in
  let tc = Test_bitsim.pinned_cosim Engine.Compiled in
  (* sampler and census read only macro evaluations derived from
     engine-exact output words: bit-identical *)
  Alcotest.(check (float 0.0)) "sampler bit-identical"
    (Hlp_power.Sampling.sampler ~seed:77 ts).Hlp_power.Sampling.value
    (Hlp_power.Sampling.sampler ~seed:77 tc).Hlp_power.Sampling.value;
  Alcotest.(check (float 0.0)) "census bit-identical"
    (Hlp_power.Sampling.census ts).Hlp_power.Sampling.value
    (Hlp_power.Sampling.census tc).Hlp_power.Sampling.value;
  (* adaptive and the gate reference touch gate-level floats: round-off *)
  Test_bitsim.check_rel "adaptive"
    (Hlp_power.Sampling.adaptive ~seed:99 ts).Hlp_power.Sampling.value
    (Hlp_power.Sampling.adaptive ~seed:99 tc).Hlp_power.Sampling.value;
  Test_bitsim.check_rel "gate reference"
    (Hlp_power.Sampling.gate_reference ts)
    (Hlp_power.Sampling.gate_reference tc);
  (* and the absolute pins still hold under the compiled engine *)
  Test_bitsim.check_rel "pinned sampler" Test_bitsim.pinned_sampler
    (Hlp_power.Sampling.sampler ~seed:77 tc).Hlp_power.Sampling.value;
  Test_bitsim.check_rel "pinned gate reference"
    Test_bitsim.pinned_gate_reference
    (Hlp_power.Sampling.gate_reference tc)

(* --- plan structure, counters, validation --- *)

let test_plan_stats () =
  let net = Generators.adder_circuit 8 in
  let plan = Kernel.compile net in
  let st = Kernel.stats plan in
  Alcotest.(check int) "every gate gets a slot" (Netlist.num_gates net)
    st.Kernel.slots;
  Alcotest.(check int) "all nodes" (Netlist.num_nodes net) st.Kernel.nodes;
  Alcotest.(check int) "levels equal the logic depth" (Netlist.logic_depth net)
    st.Kernel.levels;
  Alcotest.(check bool) "segments cover levels" true
    (st.Kernel.segments >= st.Kernel.levels);
  Alcotest.(check bool) "pool holds every pin" true
    (st.Kernel.pool >= 2 * st.Kernel.slots);
  Alcotest.(check bool) "widest level is positive" true (st.Kernel.widest_level >= 1);
  (* the fan-out masks describe real structure: level 0 (inputs) feeds
     level 1 somewhere in any adder *)
  Alcotest.(check bool) "level 0 feeds level 1" true
    (Kernel.level_fanout_mask plan 0 land 2 <> 0);
  (match Kernel.level_fanout_mask plan (st.Kernel.levels + 1) with
  | _ -> Alcotest.fail "expected Invalid_argument out of range"
  | exception Invalid_argument _ -> ());
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "stats string mentions slots" true
    (contains (Kernel.stats_string plan) "slots");
  (* segment summary covers exactly the slots *)
  let total =
    Array.fold_left (fun acc (_, k) -> acc + k) 0 (Kernel.segment_summary plan)
  in
  Alcotest.(check int) "segments sum to slots" st.Kernel.slots total

let test_validation () =
  let net = Generators.adder_circuit 4 in
  (match Kernel.compile ~caps:[| 1.0 |] net with
  | _ -> Alcotest.fail "expected Invalid_argument for a short caps table"
  | exception Invalid_argument _ -> ());
  let ker = Kernel.create (Kernel.compile net) in
  match Kernel.lane_switched_capacitance ker with
  | _ -> Alcotest.fail "expected Invalid_argument without ~track_lanes"
  | exception Invalid_argument _ -> ()

let test_set_counting_and_reset () =
  (* warm-up protocol parity with Bitsim: uncounted steps leave no trace,
     reset zeroes, and the counted step after both matches exactly *)
  let net = Generators.alu_circuit 3 in
  let nin = Array.length net.Netlist.inputs in
  let rng = Hlp_util.Prng.create 17 in
  let stimuli = Array.init 6 (fun _ -> random_words rng nin) in
  let bit = Bitsim.create ~track_lanes:true net in
  let ker = Kernel.create ~track_lanes:true (Kernel.compile net) in
  let drive sim_step set_counting reset =
    set_counting false;
    sim_step stimuli.(0);
    sim_step stimuli.(1);
    set_counting true;
    sim_step stimuli.(2);
    reset ();
    sim_step stimuli.(3);
    sim_step stimuli.(4)
  in
  drive (Bitsim.step bit) (Bitsim.set_counting bit) (fun () ->
      Bitsim.reset_counters bit);
  drive (Kernel.step ker) (Kernel.set_counting ker) (fun () ->
      Kernel.reset_counters ker);
  Alcotest.(check (array int)) "toggles" (Bitsim.toggle_counts bit)
    (Kernel.toggle_counts ker);
  Alcotest.(check int) "cycles reset identically" (Bitsim.cycles bit)
    (Kernel.cycles ker);
  float_bits_equal "switched capacitance"
    (Bitsim.switched_capacitance bit)
    (Kernel.switched_capacitance ker);
  Array.iteri
    (fun j b ->
      Alcotest.(check int64)
        (Printf.sprintf "lane %d" j)
        (bits b)
        (bits (Kernel.lane_switched_capacitance ker).(j)))
    (Bitsim.lane_switched_capacitance bit)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_step_differential;
    Alcotest.test_case "kernel differential on sequential circuit" `Quick
      test_step_differential_sequential;
    Alcotest.test_case "reset state and first-step latch" `Quick
      test_reset_state;
    Alcotest.test_case "scalar lane matches funcsim (combinational)" `Quick
      test_scalar_variant_combinational;
    Alcotest.test_case "scalar lane matches funcsim (sequential)" `Quick
      test_scalar_variant_sequential;
    QCheck_alcotest.to_alcotest qcheck_replay_differential;
    Alcotest.test_case "replay chunk-boundary lengths" `Quick
      test_replay_edge_lengths;
    Alcotest.test_case "compiled replay rejects sequential nets" `Quick
      test_replay_rejects_sequential;
    Alcotest.test_case "monte carlo byte-identical to bitparallel" `Quick
      test_mc_compiled_equals_bitparallel;
    Alcotest.test_case "monte carlo byte-identical on sequential net" `Quick
      test_mc_compiled_equals_bitparallel_sequential;
    Alcotest.test_case "golden pins (compiled engine)" `Quick
      test_golden_pins_compiled;
    Alcotest.test_case "golden pins (scalar engine)" `Quick
      test_golden_pins_scalar;
    Alcotest.test_case "constant gates levelize and fold" `Quick
      test_const_gates;
    Alcotest.test_case "dangling nodes are scheduled and accounted" `Quick
      test_dangling_nodes;
    Alcotest.test_case "gateless netlist compiles to an empty schedule" `Quick
      test_no_gates;
    Alcotest.test_case "inputless sequential netlist" `Quick test_no_inputs;
    Alcotest.test_case "plan cache: physical sharing, bypass, clear" `Quick
      test_plan_cache;
    Alcotest.test_case "degradation chain shape" `Quick test_degradation_chain;
    Alcotest.test_case "guarded replay degrades compiled -> scalar" `Quick
      test_replay_guarded_degrades_to_scalar;
    Alcotest.test_case "fault injection trips inside the compiled step" `Quick
      test_faultinject_gate_eval;
    Alcotest.test_case "compiled checkpoint does not perturb the estimate"
      `Quick test_compiled_checkpoint_passive;
    Alcotest.test_case "compiled resume after interrupt is byte-identical"
      `Quick test_compiled_resume_after_interrupt;
    Alcotest.test_case "compiled SIGKILLed child resumes byte-identical"
      `Quick test_compiled_sigkill_resume;
    Alcotest.test_case "cross-engine resume reuses journaled units" `Quick
      test_compiled_cross_engine_resume;
    QCheck_alcotest.to_alcotest qcheck_compiled_resume_any_truncation;
    Alcotest.test_case "sampling estimators under the compiled engine" `Quick
      test_sampling_compiled_engine;
    Alcotest.test_case "plan stats and fan-out masks" `Quick test_plan_stats;
    Alcotest.test_case "compile and accessor validation" `Quick
      test_validation;
    Alcotest.test_case "set_counting / reset_counters parity" `Quick
      test_set_counting_and_reset;
  ]
