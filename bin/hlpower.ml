(* hlpower: command-line front end to the toolkit.

   Subcommands:
     estimate    power-estimate a generated RT module three ways
     bus-encode  compare bus encodings on a generated address/data trace
     pm-sim      simulate system-level shutdown policies
     fsm-encode  low-power state encoding of a benchmark machine
     info        inventory of the library *)

open Cmdliner

(* Invalid argument values are rejected by Cmdliner converters (usage +
   standard exit code 124), never by [failwith] backtraces. Failures the
   libraries degrade into (budget trips, deadlines, worker failures, bad
   data) arrive as typed Hlp_util.Err errors and map to stable exit codes
   per class (65-69, see Err.exit_code), so scripts can tell "bad input"
   from "budget too small" without parsing stderr. *)

let with_typed_errors run =
  match Hlp_util.Err.protect run with
  | Ok code -> code
  | Error e ->
      Printf.eprintf "hlpower: error [%s]: %s\n"
        (Hlp_util.Err.class_name e)
        (Hlp_util.Err.to_string e);
      Hlp_util.Err.exit_code e

let circuit_enum =
  [ ("adder", Hlp_logic.Generators.adder_circuit);
    ("multiplier", Hlp_logic.Generators.multiplier_circuit);
    ("max", Hlp_logic.Generators.max_circuit);
    ("alu", Hlp_logic.Generators.alu_circuit);
    ("comparator", Hlp_logic.Generators.comparator_circuit);
    ("parity", Hlp_logic.Generators.parity_circuit) ]

let stream_enum =
  [ ("uniform", fun rng ~width ~n -> Hlp_sim.Streams.uniform rng ~width ~n);
    ("walk", fun rng ~width ~n -> Hlp_sim.Streams.gaussian_walk rng ~width ~sigma:20.0 ~n);
    ("correlated",
     fun rng ~width ~n -> Hlp_sim.Streams.correlated_bits rng ~width ~p:0.5 ~rho:0.7 ~n);
    ("biased", fun rng ~width ~n -> Hlp_sim.Streams.biased_bits rng ~width ~p:0.25 ~n) ]

let engine_enum =
  List.map (fun e -> (Hlp_sim.Engine.to_string e, e)) Hlp_sim.Engine.all
  (* short aliases accepted by Engine.of_string since the engines landed *)
  @ [ ("bitpar", Hlp_sim.Engine.Bitparallel); ("par", Hlp_sim.Engine.Parallel) ]

let enum_doc alts = String.concat "|" (List.map fst alts)

(* a positive-int converter with a lower bound, for --cycles and friends *)
let int_at_least lower what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= lower -> Ok v
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be >= %d" what lower))
    | None -> Error (`Msg (Printf.sprintf "invalid %s: %S (expected an integer)" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* --- estimate --- *)

let estimate circuit width cycles stream seed engine jobs profile telemetry_json
    deadline node_limit max_retries trace_out attribution run_report =
  with_typed_errors @@ fun () ->
  if profile || telemetry_json <> None || run_report <> None then
    Hlp_util.Telemetry.enable ();
  if trace_out <> None then Hlp_util.Trace.enable ();
  let guard = Hlp_util.Guard.create ?deadline_s:deadline () in
  let net = circuit width in
  Printf.printf "circuit: %s\n" (Hlp_logic.Netlist.stats_string net);
  let nin = Array.length net.Hlp_logic.Netlist.inputs in
  let rng = Hlp_util.Prng.create seed in
  let trace = stream rng ~width:nin ~n:cycles in
  let vector i = Array.init nin (fun b -> Hlp_util.Bits.bit trace.(i) b) in
  let r =
    match
      Hlp_sim.Parsim.replay_guarded ?jobs ?max_retries ~guard ~engine net ~vector
        ~n:cycles
    with
    | Ok d ->
        if d.Hlp_sim.Parsim.fallbacks > 0 then
          Printf.printf "note: replay degraded %s -> %s (%d fallback%s)\n"
            (Hlp_sim.Engine.to_string engine)
            (Hlp_sim.Engine.to_string d.Hlp_sim.Parsim.engine_used)
            d.Hlp_sim.Parsim.fallbacks
            (if d.Hlp_sim.Parsim.fallbacks = 1 then "" else "s");
        d.Hlp_sim.Parsim.value
    | Error e -> raise (Hlp_util.Err.Error e)
  in
  let reference = Hlp_util.Stats.mean r.Hlp_sim.Parsim.transition_caps in
  Printf.printf "gate-level reference:   %10.1f cap units/cycle  [%s engine]\n"
    reference
    (Hlp_sim.Engine.to_string engine);
  List.iter
    (fun (name, model) ->
      let est = Hlp_power.Entropy.estimate_netlist ~model net ~input_trace:trace in
      Printf.printf "%-22s %10.1f cap units/cycle\n" name
        (est.Hlp_power.Entropy.c_tot *. est.Hlp_power.Entropy.e_avg))
    [ ("entropy (Marculescu):", Hlp_power.Entropy.Marculescu);
      ("entropy (Nemani-Najm):", Hlp_power.Entropy.Nemani_najm) ];
  let ces =
    Hlp_power.Complexity.ces_switched_capacitance_estimate Hlp_power.Complexity.ces_default net
  in
  Printf.printf "%-22s %10.1f cap units/cycle\n" "gate-equivalents (CES):" ces;
  let mc = Hlp_power.Probprop.monte_carlo ~seed ~engine ?jobs ?max_retries ~guard net in
  Printf.printf
    "monte carlo (t-CI):     %10.1f cap units/cycle  (+/- %.1f, %d batches, %d cycles)\n"
    mc.Hlp_power.Probprop.estimate mc.Hlp_power.Probprop.half_interval
    mc.Hlp_power.Probprop.batches mc.Hlp_power.Probprop.cycles_used;
  (* the guarded path: exact symbolic under the node budget, Monte Carlo
     sampling as the degradation target on blowup *)
  (match
     Hlp_power.Probprop.estimate_guarded ~guard ?node_limit ~seed ~engine ?jobs
       ?max_retries net
   with
  | Ok g ->
      let how =
        match g.Hlp_power.Probprop.estimator with
        | Hlp_power.Probprop.Symbolic -> "symbolic (exact BDD)"
        | Hlp_power.Probprop.Monte_carlo mc ->
            Printf.sprintf "sampled%s on %s engine, +/- %.1f"
              (if g.Hlp_power.Probprop.symbolic_fallback then
                 " after BDD budget trip"
               else "")
              (match g.Hlp_power.Probprop.engine_used with
              | Some e -> Hlp_sim.Engine.to_string e
              | None -> "?")
              mc.Hlp_power.Probprop.half_interval
      in
      Printf.printf "guarded estimate:       %10.1f cap units/cycle  [%s]\n"
        g.Hlp_power.Probprop.capacitance how;
      (match run_report with
      | Some path ->
          (* provenance of the guarded estimate plus the full telemetry
             registry: everything needed to say how the number was made *)
          let report =
            Hlp_util.Json.Obj
              [ ("command", Hlp_util.Json.Str "estimate");
                ("cycles", Hlp_util.Json.Int cycles);
                ("seed", Hlp_util.Json.Int seed);
                ("requested_engine",
                 Hlp_util.Json.Str (Hlp_sim.Engine.to_string engine));
                ("gate_level_reference", Hlp_util.Json.Float reference);
                ("guarded_estimate",
                 Hlp_util.Json.Float g.Hlp_power.Probprop.capacitance);
                ("provenance",
                 Hlp_power.Probprop.provenance_json
                   g.Hlp_power.Probprop.provenance);
                ("telemetry", Hlp_util.Telemetry.json_value ()) ]
          in
          Hlp_util.Json.write ~path report;
          Printf.printf "run report written to %s\n" path
      | None -> ())
  | Error e -> raise (Hlp_util.Err.Error e));
  (match attribution with
  | Some k ->
      (* scalar re-replay of the same trace: the per-node charge model is
         the reference simulator's own, so the rollup partitions exactly
         the reference's total switched capacitance *)
      let a = Hlp_power.Attribution.profile net ~vector ~n:cycles in
      print_newline ();
      print_string (Hlp_power.Attribution.report ~top_k:k a)
  | None -> ());
  if profile then begin
    print_newline ();
    Hlp_util.Telemetry.print_report ()
  end;
  (match telemetry_json with
  | Some path ->
      let oc = open_out path in
      output_string oc (Hlp_util.Telemetry.to_json ());
      output_char oc '\n';
      close_out oc;
      Printf.printf "telemetry written to %s\n" path
  | None -> ());
  (match trace_out with
  | Some path ->
      Hlp_util.Trace.write ~path;
      Printf.printf "trace written to %s (%d events, %d dropped)\n" path
        (Hlp_util.Trace.event_count ())
        (Hlp_util.Trace.dropped ())
  | None -> ());
  0

let estimate_cmd =
  let circuit =
    Arg.(value & opt (enum circuit_enum) Hlp_logic.Generators.multiplier_circuit
         & info [ "circuit" ] ~docv:"CIRCUIT" ~doc:(enum_doc circuit_enum))
  in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"operand bit width") in
  let cycles =
    Arg.(value & opt (int_at_least 2 "--cycles") 2000
         & info [ "cycles" ]
             ~doc:"simulation cycles (>= 2: the reference averages over trace transitions)")
  in
  let stream =
    Arg.(value & opt (enum stream_enum) (List.assoc "uniform" stream_enum)
         & info [ "stream" ] ~docv:"STREAM" ~doc:(enum_doc stream_enum))
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let engine =
    Arg.(value & opt (enum engine_enum) Hlp_sim.Engine.Bitparallel
         & info [ "engine" ]
             ~docv:"ENGINE"
             ~doc:
               (enum_doc engine_enum
               ^ " — simulation engine for the gate-level reference (bit \
                  engines pack 63 trace cycles per word-wide step; \
                  estimates agree to round-off)"))
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:
               "worker domains for the parallel engine (default: all cores); \
                results are bit-identical for any value")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:
               "enable the telemetry layer and print per-engine counters, \
                timers, and Monte Carlo convergence series after the run")
  in
  let telemetry_json =
    Arg.(value & opt (some string) None
         & info [ "telemetry-json" ] ~docv:"FILE"
             ~doc:"enable the telemetry layer and write it to $(docv) as JSON")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:
               "wall-clock budget for the whole run; a trip exits with the \
                stable deadline-exceeded code (67) instead of a late answer")
  in
  let node_limit =
    Arg.(value & opt (some (int_at_least 1 "--bdd-node-limit")) None
         & info [ "bdd-node-limit" ] ~docv:"NODES"
             ~doc:
               "BDD node budget for the exact symbolic estimator (default \
                200000); a blowup degrades to Monte Carlo sampling instead \
                of exhausting memory")
  in
  let max_retries =
    Arg.(value & opt (some (int_at_least 0 "--max-retries")) None
         & info [ "max-retries" ] ~docv:"N"
             ~doc:
               "retries per failed worker shard before the engine degrades \
                (default 2, exponential backoff)")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "enable span tracing and write a Chrome trace-event JSON to \
                $(docv) (load in Perfetto or chrome://tracing)")
  in
  let attribution =
    Arg.(value & opt (some (int_at_least 1 "--attribution")) None
         & info [ "attribution" ] ~docv:"K"
             ~doc:
               "print the $(docv) hottest gates by switched capacitance and \
                the per-group rollup (scalar reference replay)")
  in
  let run_report =
    Arg.(value & opt (some string) None
         & info [ "run-report" ] ~docv:"FILE"
             ~doc:
               "write a JSON run-provenance record (engine used, fallback \
                hops, guard trips, fault counters, seed, convergence tail, \
                wall time) to $(docv); implies telemetry")
  in
  Cmd.v (Cmd.info "estimate" ~doc:"Power-estimate a generated RT module")
    Term.(const estimate $ circuit $ width $ cycles $ stream $ seed $ engine $ jobs
          $ profile $ telemetry_json $ deadline $ node_limit $ max_retries
          $ trace_out $ attribution $ run_report)

(* --- bus-encode --- *)

let trace_enum =
  [ ("sequential", fun _ ~width ~n -> Hlp_bus.Traces.sequential () ~width ~n);
    ("jumps",
     fun rng ~width ~n -> Hlp_bus.Traces.sequential_with_jumps rng ~jump_prob:0.05 ~width ~n);
    ("interleaved",
     fun rng ~width ~n ->
       Hlp_bus.Traces.interleaved_arrays rng ~bases:[ 0x100; 0x4200; 0x8000 ]
         ~stride:1 ~width ~n);
    ("loop",
     fun rng ~width ~n -> Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:(n / 15) ~width);
    ("random", fun rng ~width ~n -> Hlp_bus.Traces.random_data rng ~width ~n) ]

let bus_encode trace width n seed =
  let rng = Hlp_util.Prng.create seed in
  let stream = trace rng ~width ~n in
  let train = Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:60 ~width in
  let beach = Hlp_bus.Encoding.train_beach ~width train in
  Printf.printf "%-14s %12s %6s\n" "scheme" "trans/word" "lines";
  List.iter
    (fun scheme ->
      assert (Hlp_bus.Encoding.roundtrip scheme ~width stream);
      let r = Hlp_bus.Encoding.evaluate scheme ~width stream in
      Printf.printf "%-14s %12.3f %6d\n"
        (Hlp_bus.Encoding.scheme_name scheme)
        r.Hlp_bus.Encoding.per_word r.Hlp_bus.Encoding.lines)
    [ Hlp_bus.Encoding.Binary; Hlp_bus.Encoding.Gray_code; Hlp_bus.Encoding.Bus_invert;
      Hlp_bus.Encoding.T0; Hlp_bus.Encoding.T0_bus_invert;
      Hlp_bus.Encoding.Working_zone { zones = 4; offset_bits = 4 }; beach ];
  0

let bus_cmd =
  let trace =
    Arg.(value & opt (enum trace_enum) (List.assoc "sequential" trace_enum)
         & info [ "trace" ] ~docv:"TRACE" ~doc:(enum_doc trace_enum))
  in
  let width = Arg.(value & opt int 16 & info [ "width" ] ~doc:"bus width") in
  let n = Arg.(value & opt int 4000 & info [ "words" ] ~doc:"trace length") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "bus-encode" ~doc:"Compare bus encodings on a generated trace")
    Term.(const bus_encode $ trace $ width $ n $ seed)

(* --- pm-sim --- *)

let pm_sim sessions seed =
  let device = Hlp_pm.Policy.default_device in
  let w = Hlp_pm.Policy.workload ~sessions (Hlp_util.Prng.create seed) in
  Printf.printf "%-24s %12s %8s %10s\n" "policy" "improvement" "delay" "shutdowns";
  List.iter
    (fun p ->
      let s = Hlp_pm.Policy.simulate device p w in
      Printf.printf "%-24s %11.2fx %7.2f%% %10d\n" (Hlp_pm.Policy.policy_name p)
        s.Hlp_pm.Policy.improvement
        (100.0 *. s.Hlp_pm.Policy.delay_penalty)
        s.Hlp_pm.Policy.shutdowns)
    [ Hlp_pm.Policy.Always_on; Hlp_pm.Policy.Timeout 5.0; Hlp_pm.Policy.Threshold 1.0;
      Hlp_pm.Policy.Regression; Hlp_pm.Policy.Exp_average { alpha = 0.3; prewake = false };
      Hlp_pm.Policy.Oracle ];
  0

let pm_cmd =
  let sessions = Arg.(value & opt int 10_000 & info [ "sessions" ] ~doc:"workload size") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "pm-sim" ~doc:"Simulate system-level shutdown policies")
    Term.(const pm_sim $ sessions $ seed)

(* --- fsm-encode --- *)

let machine_enum =
  [ ("counter", fun _ -> Hlp_fsm.Stg.counter_fsm ~bits:4);
    ("updown", fun _ -> Hlp_fsm.Stg.updown ~bits:4);
    ("reactive", fun _ -> Hlp_fsm.Stg.reactive ~wait_states:4 ~burst_states:4);
    ("seqdet", fun _ -> Hlp_fsm.Stg.sequence_detector ~pattern:[ true; false; true; true ]);
    ("random",
     fun seed ->
       Hlp_fsm.Stg.random_fsm (Hlp_util.Prng.create seed) ~states:12 ~input_bits:2
         ~output_bits:3) ]

let fsm_encode machine iterations seed =
  let stg = machine seed in
  let dist = Hlp_fsm.Markov.analyze stg in
  let rng = Hlp_util.Prng.create seed in
  Printf.printf "%-10s %16s %18s\n" "encoding" "E[Hamming]/cycle" "synth cap/cycle";
  List.iter
    (fun (name, enc) ->
      Printf.printf "%-10s %16.3f %18.1f\n" name
        (Hlp_fsm.Encode.cost stg dist enc)
        (Hlp_fsm.Synth.switched_capacitance_per_cycle ~encoding:enc stg))
    [
      ("natural", Hlp_fsm.Encode.natural stg);
      ("gray", Hlp_fsm.Encode.gray stg);
      ("one-hot", Hlp_fsm.Encode.one_hot stg);
      ("annealed", Hlp_fsm.Encode.anneal ~iterations rng stg dist);
    ];
  0

let fsm_cmd =
  let machine =
    Arg.(value & opt (enum machine_enum) (List.assoc "random" machine_enum)
         & info [ "machine" ] ~docv:"MACHINE" ~doc:(enum_doc machine_enum))
  in
  let iterations =
    Arg.(value & opt int 20_000 & info [ "iterations" ] ~doc:"annealing iterations")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "fsm-encode" ~doc:"Low-power state encoding of a benchmark machine")
    Term.(const fsm_encode $ machine $ iterations $ seed)

(* --- export --- *)

let format_enum =
  [ ("verilog",
     fun name net -> print_string (Hlp_logic.Export.to_verilog ~module_name:name net));
    ("dot", fun _ net -> print_string (Hlp_logic.Export.to_dot ~max_nodes:2000 net)) ]

let export (name, circuit) width format =
  format name (circuit width);
  0

let export_cmd =
  let circuit =
    (* keep the circuit's name around for the Verilog module name *)
    let named = List.map (fun (name, f) -> (name, (name, f))) circuit_enum in
    Arg.(value & opt (enum named) (List.assoc "adder" named)
         & info [ "circuit" ] ~docv:"CIRCUIT" ~doc:(enum_doc circuit_enum))
  in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"operand bit width") in
  let format =
    Arg.(value & opt (enum format_enum) (List.assoc "verilog" format_enum)
         & info [ "format" ] ~docv:"FORMAT" ~doc:(enum_doc format_enum))
  in
  Cmd.v (Cmd.info "export" ~doc:"Emit a generated circuit as Verilog or dot")
    Term.(const export $ circuit $ width $ format)

(* --- info --- *)

let show_info () =
  print_endline "hlpower: high-level power modeling, estimation, and optimization";
  print_endline "reproduction of Macii/Pedram/Somenzi (DAC'97 / IEEE TCAD'98)";
  print_endline "";
  print_endline "libraries:";
  List.iter
    (fun (name, what) -> Printf.printf "  %-14s %s\n" name what)
    [
      ("hlp_util", "PRNG, statistics, least squares, bit utilities");
      ("hlp_logic", "gate library, netlists, datapath generators");
      ("hlp_bdd", "hash-consed ROBDDs (ite, quantify, compose, probability)");
      ("hlp_sim", "zero-delay and event-driven (glitch) simulation, streams");
      ("hlp_fsm", "STGs, Markov analysis, encodings, controller synthesis");
      ("hlp_rtl", "CDFGs, scheduling, allocation, multi-Vdd, Table I FIR");
      ("hlp_isa", "RISC ISA, cycle/energy machine, Tiwari model, Hsieh synthesis");
      ("hlp_power", "entropy/complexity models, macro-models, sampling, SRAM");
      ("hlp_bus", "Bus-Invert, Gray, T0, Working-Zone, Beach encodings");
      ("hlp_pm", "shutdown policies: timeout, threshold, regression, Hwang-Wu");
      ("hlp_optlogic", "precomputation, gated clocks, guarded evaluation, retiming");
    ];
  print_endline "";
  print_endline "run `dune exec bench/main.exe` for the full experiment reproduction.";
  0

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Library inventory") Term.(const show_info $ const ())

let () =
  let doc = "high-level power modeling, estimation, and optimization toolkit" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "hlpower" ~version:"1.0.0" ~doc)
          [ estimate_cmd; bus_cmd; pm_cmd; fsm_cmd; export_cmd; info_cmd ]))
