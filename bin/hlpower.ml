(* hlpower: command-line front end to the toolkit.

   Subcommands:
     estimate    power-estimate a generated RT module three ways
     batch       supervised campaign of estimate jobs with checkpoint/resume
     serve       persistent estimation daemon on a Unix-domain socket
     client      resilient framed-protocol client for serve; doubles as loadgen
     chaos-proxy fault-injecting socket proxy for resilience soaks
     bus-encode  compare bus encodings on a generated address/data trace
     pm-sim      simulate system-level shutdown policies
     fsm-encode  low-power state encoding of a benchmark machine
     info        inventory of the library *)

open Cmdliner

(* Invalid argument values are rejected by Cmdliner converters (usage +
   standard exit code 124), never by [failwith] backtraces. Failures the
   libraries degrade into (budget trips, deadlines, worker failures, bad
   data) arrive as typed Hlp_util.Err errors and map to stable exit codes
   per class (65-69, see Err.exit_code), so scripts can tell "bad input"
   from "budget too small" without parsing stderr. *)

let with_typed_errors run =
  match Hlp_util.Err.protect run with
  | Ok code -> code
  | Error e ->
      Printf.eprintf "hlpower: error [%s]: %s\n"
        (Hlp_util.Err.class_name e)
        (Hlp_util.Err.to_string e);
      Hlp_util.Err.exit_code e

let circuit_enum =
  [ ("adder", Hlp_logic.Generators.adder_circuit);
    ("multiplier", Hlp_logic.Generators.multiplier_circuit);
    ("max", Hlp_logic.Generators.max_circuit);
    ("alu", Hlp_logic.Generators.alu_circuit);
    ("comparator", Hlp_logic.Generators.comparator_circuit);
    ("parity", Hlp_logic.Generators.parity_circuit) ]

let stream_enum =
  [ ("uniform", fun rng ~width ~n -> Hlp_sim.Streams.uniform rng ~width ~n);
    ("walk", fun rng ~width ~n -> Hlp_sim.Streams.gaussian_walk rng ~width ~sigma:20.0 ~n);
    ("correlated",
     fun rng ~width ~n -> Hlp_sim.Streams.correlated_bits rng ~width ~p:0.5 ~rho:0.7 ~n);
    ("biased", fun rng ~width ~n -> Hlp_sim.Streams.biased_bits rng ~width ~p:0.25 ~n) ]

let engine_enum =
  List.map (fun e -> (Hlp_sim.Engine.to_string e, e)) Hlp_sim.Engine.all
  (* short aliases accepted by Engine.of_string since the engines landed *)
  @ [ ("bitpar", Hlp_sim.Engine.Bitparallel); ("par", Hlp_sim.Engine.Parallel);
      ("kernel", Hlp_sim.Engine.Compiled) ]

let enum_doc alts = String.concat "|" (List.map fst alts)

(* a positive-int converter with a lower bound, for --cycles and friends *)
let int_at_least lower what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= lower -> Ok v
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be >= %d" what lower))
    | None -> Error (`Msg (Printf.sprintf "invalid %s: %S (expected an integer)" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* --- estimate --- *)

(* Satellite to the supervisor work: flag domains that depend on each
   other (or on the Err taxonomy) are validated in the command body with
   typed Invalid_input — stable exit 65 — instead of Cmdliner converter
   errors, so scripted callers get one code for every bad-value path. *)
let require_positive_float ~flag v =
  match v with
  | Some d when (not (Float.is_finite d)) || d <= 0.0 ->
      raise
        (Hlp_util.Err.invalid_input ~what:flag
           "must be a positive, finite number of seconds")
  | _ -> v

let require_at_least ~flag lower v =
  match v with
  | Some n when n < lower ->
      raise
        (Hlp_util.Err.invalid_input ~what:flag
           (Printf.sprintf "must be >= %d" lower))
  | _ -> v

let estimate circuit width cycles stream seed engine jobs profile telemetry_json
    deadline node_limit max_retries trace_out attribution run_report =
  with_typed_errors @@ fun () ->
  let deadline = require_positive_float ~flag:"--deadline" deadline in
  let max_retries = require_at_least ~flag:"--max-retries" 1 max_retries in
  if profile || telemetry_json <> None || run_report <> None then
    Hlp_util.Telemetry.enable ();
  if trace_out <> None then Hlp_util.Trace.enable ();
  let guard = Hlp_util.Guard.create ?deadline_s:deadline () in
  let net = circuit width in
  Printf.printf "circuit: %s\n" (Hlp_logic.Netlist.stats_string net);
  let nin = Array.length net.Hlp_logic.Netlist.inputs in
  let rng = Hlp_util.Prng.create seed in
  let trace = stream rng ~width:nin ~n:cycles in
  let vector i = Array.init nin (fun b -> Hlp_util.Bits.bit trace.(i) b) in
  let r =
    match
      Hlp_sim.Parsim.replay_guarded ?jobs ?max_retries ~guard ~engine net ~vector
        ~n:cycles
    with
    | Ok d ->
        if d.Hlp_sim.Parsim.fallbacks > 0 then
          Printf.printf "note: replay degraded %s -> %s (%d fallback%s)\n"
            (Hlp_sim.Engine.to_string engine)
            (Hlp_sim.Engine.to_string d.Hlp_sim.Parsim.engine_used)
            d.Hlp_sim.Parsim.fallbacks
            (if d.Hlp_sim.Parsim.fallbacks = 1 then "" else "s");
        d.Hlp_sim.Parsim.value
    | Error e -> raise (Hlp_util.Err.Error e)
  in
  let reference = Hlp_util.Stats.mean r.Hlp_sim.Parsim.transition_caps in
  Printf.printf "gate-level reference:   %10.1f cap units/cycle  [%s engine]\n"
    reference
    (Hlp_sim.Engine.to_string engine);
  List.iter
    (fun (name, model) ->
      let est = Hlp_power.Entropy.estimate_netlist ~model net ~input_trace:trace in
      Printf.printf "%-22s %10.1f cap units/cycle\n" name
        (est.Hlp_power.Entropy.c_tot *. est.Hlp_power.Entropy.e_avg))
    [ ("entropy (Marculescu):", Hlp_power.Entropy.Marculescu);
      ("entropy (Nemani-Najm):", Hlp_power.Entropy.Nemani_najm) ];
  let ces =
    Hlp_power.Complexity.ces_switched_capacitance_estimate Hlp_power.Complexity.ces_default net
  in
  Printf.printf "%-22s %10.1f cap units/cycle\n" "gate-equivalents (CES):" ces;
  let mc = Hlp_power.Probprop.monte_carlo ~seed ~engine ?jobs ?max_retries ~guard net in
  Printf.printf
    "monte carlo (t-CI):     %10.1f cap units/cycle  (+/- %.1f, %d batches, %d cycles)\n"
    mc.Hlp_power.Probprop.estimate mc.Hlp_power.Probprop.half_interval
    mc.Hlp_power.Probprop.batches mc.Hlp_power.Probprop.cycles_used;
  (* the guarded path: exact symbolic under the node budget, Monte Carlo
     sampling as the degradation target on blowup *)
  (match
     Hlp_power.Probprop.estimate_guarded ~guard ?node_limit ~seed ~engine ?jobs
       ?max_retries net
   with
  | Ok g ->
      let how =
        match g.Hlp_power.Probprop.estimator with
        | Hlp_power.Probprop.Symbolic -> "symbolic (exact BDD)"
        | Hlp_power.Probprop.Monte_carlo mc ->
            Printf.sprintf "sampled%s on %s engine, +/- %.1f"
              (if g.Hlp_power.Probprop.symbolic_fallback then
                 " after BDD budget trip"
               else "")
              (match g.Hlp_power.Probprop.engine_used with
              | Some e -> Hlp_sim.Engine.to_string e
              | None -> "?")
              mc.Hlp_power.Probprop.half_interval
      in
      Printf.printf "guarded estimate:       %10.1f cap units/cycle  [%s]\n"
        g.Hlp_power.Probprop.capacitance how;
      (match run_report with
      | Some path ->
          (* provenance of the guarded estimate plus the full telemetry
             registry: everything needed to say how the number was made *)
          let report =
            Hlp_util.Json.Obj
              [ ("command", Hlp_util.Json.Str "estimate");
                ("cycles", Hlp_util.Json.Int cycles);
                ("seed", Hlp_util.Json.Int seed);
                ("requested_engine",
                 Hlp_util.Json.Str (Hlp_sim.Engine.to_string engine));
                ("gate_level_reference", Hlp_util.Json.Float reference);
                ("guarded_estimate",
                 Hlp_util.Json.Float g.Hlp_power.Probprop.capacitance);
                ("provenance",
                 Hlp_power.Probprop.provenance_json
                   g.Hlp_power.Probprop.provenance);
                ("telemetry", Hlp_util.Telemetry.json_value ()) ]
          in
          Hlp_util.Json.write ~path report;
          Printf.printf "run report written to %s\n" path
      | None -> ())
  | Error e -> raise (Hlp_util.Err.Error e));
  (match attribution with
  | Some k ->
      (* scalar re-replay of the same trace: the per-node charge model is
         the reference simulator's own, so the rollup partitions exactly
         the reference's total switched capacitance *)
      let a = Hlp_power.Attribution.profile net ~vector ~n:cycles in
      print_newline ();
      print_string (Hlp_power.Attribution.report ~top_k:k a)
  | None -> ());
  if profile then begin
    print_newline ();
    Hlp_util.Telemetry.print_report ()
  end;
  (match telemetry_json with
  | Some path ->
      (* atomic like every other JSON artifact: a reader or a crash never
         sees a torn file *)
      Hlp_util.Journal.write_atomic ~path (Hlp_util.Telemetry.to_json () ^ "\n");
      Printf.printf "telemetry written to %s\n" path
  | None -> ());
  (match trace_out with
  | Some path ->
      Hlp_util.Trace.write ~path;
      Printf.printf "trace written to %s (%d events, %d dropped)\n" path
        (Hlp_util.Trace.event_count ())
        (Hlp_util.Trace.dropped ())
  | None -> ());
  0

let estimate_cmd =
  let circuit =
    Arg.(value & opt (enum circuit_enum) Hlp_logic.Generators.multiplier_circuit
         & info [ "circuit" ] ~docv:"CIRCUIT" ~doc:(enum_doc circuit_enum))
  in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"operand bit width") in
  let cycles =
    Arg.(value & opt (int_at_least 2 "--cycles") 2000
         & info [ "cycles" ]
             ~doc:"simulation cycles (>= 2: the reference averages over trace transitions)")
  in
  let stream =
    Arg.(value & opt (enum stream_enum) (List.assoc "uniform" stream_enum)
         & info [ "stream" ] ~docv:"STREAM" ~doc:(enum_doc stream_enum))
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let engine =
    Arg.(value & opt (enum engine_enum) Hlp_sim.Engine.Bitparallel
         & info [ "engine" ]
             ~docv:"ENGINE"
             ~doc:
               (enum_doc engine_enum
               ^ " — simulation engine for the gate-level reference (bit \
                  engines pack 63 trace cycles per word-wide step; \
                  estimates agree to round-off)"))
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:
               "worker domains for the parallel engine (default: all cores); \
                results are bit-identical for any value")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:
               "enable the telemetry layer and print per-engine counters, \
                timers, and Monte Carlo convergence series after the run")
  in
  let telemetry_json =
    Arg.(value & opt (some string) None
         & info [ "telemetry-json" ] ~docv:"FILE"
             ~doc:"enable the telemetry layer and write it to $(docv) as JSON")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:
               "wall-clock budget for the whole run; a trip exits with the \
                stable deadline-exceeded code (67) instead of a late answer")
  in
  let node_limit =
    Arg.(value & opt (some (int_at_least 1 "--bdd-node-limit")) None
         & info [ "bdd-node-limit" ] ~docv:"NODES"
             ~doc:
               "BDD node budget for the exact symbolic estimator (default \
                200000); a blowup degrades to Monte Carlo sampling instead \
                of exhausting memory")
  in
  let max_retries =
    (* validated in the command body (typed Invalid_input, exit 65), not by
       the converter, so zero/negative behaves like every bad value *)
    Arg.(value & opt (some int) None
         & info [ "max-retries" ] ~docv:"N"
             ~doc:
               "retries per failed worker shard before the engine degrades \
                (default 2, exponential backoff); must be >= 1")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "enable span tracing and write a Chrome trace-event JSON to \
                $(docv) (load in Perfetto or chrome://tracing)")
  in
  let attribution =
    Arg.(value & opt (some (int_at_least 1 "--attribution")) None
         & info [ "attribution" ] ~docv:"K"
             ~doc:
               "print the $(docv) hottest gates by switched capacitance and \
                the per-group rollup (scalar reference replay)")
  in
  let run_report =
    Arg.(value & opt (some string) None
         & info [ "run-report" ] ~docv:"FILE"
             ~doc:
               "write a JSON run-provenance record (engine used, fallback \
                hops, guard trips, fault counters, seed, convergence tail, \
                wall time) to $(docv); implies telemetry")
  in
  Cmd.v (Cmd.info "estimate" ~doc:"Power-estimate a generated RT module")
    Term.(const estimate $ circuit $ width $ cycles $ stream $ seed $ engine $ jobs
          $ profile $ telemetry_json $ deadline $ node_limit $ max_retries
          $ trace_out $ attribution $ run_report)

(* --- batch: supervised estimation campaigns --- *)

(* One estimation job parsed from the jobs.json array. *)
type batch_job = {
  bj_name : string;
  bj_net : Hlp_logic.Netlist.t;
  bj_seed : int;
  bj_engine : Hlp_sim.Engine.t;
  bj_rp : float option;
  bj_max_cycles : int option;
  bj_batch : int option;
  bj_node_limit : int option;
}

let parse_jobs_file path =
  let bad why =
    raise (Hlp_util.Err.invalid_input ~what:("batch jobs file " ^ path) why)
  in
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> bad e
  in
  let jobs =
    match Hlp_util.Json.parse contents with
    | Error e -> bad ("not valid JSON: " ^ e)
    | Ok v -> (
        match Hlp_util.Json.to_list_opt v with
        | Some l -> l
        | None -> bad "top level must be an array of job objects")
  in
  if jobs = [] then bad "no jobs";
  Array.of_list
    (List.mapi
       (fun i v ->
         let where fld = Printf.sprintf "job %d: %S" i fld in
         let str fld d =
           match Hlp_util.Json.member fld v with
           | None -> d
           | Some x -> (
               match Hlp_util.Json.to_str_opt x with
               | Some s -> s
               | None -> bad (where fld ^ " must be a string"))
         in
         let int_ fld d =
           match Hlp_util.Json.member fld v with
           | None -> d
           | Some x -> (
               match Hlp_util.Json.to_int_opt x with
               | Some n -> Some n
               | None -> bad (where fld ^ " must be an integer"))
         in
         let float_ fld =
           match Hlp_util.Json.member fld v with
           | None -> None
           | Some x -> (
               match Hlp_util.Json.to_float_opt x with
               | Some f -> Some f
               | None -> bad (where fld ^ " must be a number"))
         in
         let circuit_name = str "circuit" "multiplier" in
         let circuit =
           match List.assoc_opt circuit_name circuit_enum with
           | Some c -> c
           | None ->
               bad
                 (where "circuit" ^ " unknown: " ^ circuit_name ^ " (expected "
                 ^ enum_doc circuit_enum ^ ")")
         in
         let engine_name = str "engine" "bitparallel" in
         let engine =
           match List.assoc_opt engine_name engine_enum with
           | Some e -> e
           | None ->
               bad
                 (where "engine" ^ " unknown: " ^ engine_name ^ " (expected "
                 ^ enum_doc engine_enum ^ ")")
         in
         let width = Option.value (int_ "width" (Some 8)) ~default:8 in
         {
           bj_name =
             str "name" (Printf.sprintf "job%d-%s%d" i circuit_name width);
           bj_net = circuit width;
           bj_seed = Option.value (int_ "seed" (Some (47 + i))) ~default:(47 + i);
           bj_engine = engine;
           bj_rp = float_ "relative_precision";
           bj_max_cycles = int_ "max_cycles" None;
           bj_batch = int_ "batch" None;
           bj_node_limit = int_ "node_limit" None;
         })
       jobs)

let batch jobs_file checkpoint_dir resume max_inflight queue_budget deadline
    max_retries breaker_threshold breaker_cooldown telemetry_json trace_out
    report =
  with_typed_errors @@ fun () ->
  let deadline = require_positive_float ~flag:"--deadline" deadline in
  let max_retries = require_at_least ~flag:"--max-retries" 1 max_retries in
  let max_inflight = require_at_least ~flag:"--max-inflight" 1 max_inflight in
  let queue_budget = require_at_least ~flag:"--queue-budget" 1 queue_budget in
  if telemetry_json <> None || report <> None then Hlp_util.Telemetry.enable ();
  if trace_out <> None then Hlp_util.Trace.enable ();
  let jobs = parse_jobs_file jobs_file in
  (match checkpoint_dir with
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise
          (Hlp_util.Err.invalid_input ~what:"--checkpoint-dir"
             (dir ^ " exists and is not a directory"))
  | None -> ());
  (* one breaker for the symbolic BDD stage, shared by every job: repeated
     node-budget trips open it and jobs route straight to Monte Carlo
     until the cooldown lets one probe try symbolic again *)
  let breaker =
    Hlp_util.Supervisor.breaker ?failure_threshold:breaker_threshold
      ?cooldown_s:breaker_cooldown "probprop.symbolic"
  in
  let run_job _idx guard job =
    let ck =
      Option.map
        (fun dir ->
          Hlp_power.Probprop.checkpoint ~resume
            (Filename.concat dir (job.bj_name ^ ".journal")))
        checkpoint_dir
    in
    let combinational = Hlp_logic.Netlist.num_dffs job.bj_net = 0 in
    let try_symbolic =
      combinational && Hlp_util.Supervisor.breaker_allows breaker
    in
    let r =
      Hlp_power.Probprop.estimate_guarded ~guard ~try_symbolic ?checkpoint:ck
        ?node_limit:job.bj_node_limit ?batch:job.bj_batch
        ?relative_precision:job.bj_rp ?max_cycles:job.bj_max_cycles
        ~seed:job.bj_seed ~engine:job.bj_engine ?max_retries job.bj_net
    in
    (if combinational && try_symbolic then
       match r with
       | Ok g ->
           if g.Hlp_power.Probprop.symbolic_fallback then
             Hlp_util.Supervisor.breaker_failure breaker
           else Hlp_util.Supervisor.breaker_success breaker
       | Error _ ->
           (* the failure was not the symbolic stage's (budget trips are
              contained inside estimate_guarded as symbolic_fallback);
              release the permission/probe without a penalty *)
           Hlp_util.Supervisor.breaker_success breaker);
    match r with
    | Error e -> raise (Hlp_util.Err.Error e)
    | Ok g ->
        (match checkpoint_dir with
        | Some dir ->
            (* atomic per-job snapshot: old complete file or new complete
               file, never a torn one *)
            Hlp_util.Json.write
              ~path:(Filename.concat dir (job.bj_name ^ ".result.json"))
              (Hlp_util.Json.Obj
                 [ ("name", Hlp_util.Json.Str job.bj_name);
                   ("estimate",
                    Hlp_util.Json.Float g.Hlp_power.Probprop.capacitance);
                   ("provenance",
                    Hlp_power.Probprop.provenance_json
                      g.Hlp_power.Probprop.provenance) ])
        | None -> ());
        g
  in
  let (results, stats), signal =
    Hlp_util.Supervisor.with_graceful_stop (fun token ->
        Hlp_util.Supervisor.run_jobs ?max_inflight ?queue_budget
          ?deadline_s:deadline ~token run_job jobs)
  in
  Printf.printf "%-20s %-12s %s\n" "job" "status" "result";
  Array.iteri
    (fun i r ->
      match r with
      | Ok g ->
          Printf.printf "%-20s %-12s %10.1f cap units/cycle [%s]\n"
            jobs.(i).bj_name "ok" g.Hlp_power.Probprop.capacitance
            g.Hlp_power.Probprop.provenance.Hlp_power.Probprop.estimator_used
      | Error e ->
          Printf.printf "%-20s %-12s %s\n" jobs.(i).bj_name
            (Hlp_util.Err.class_name e)
            (Hlp_util.Err.to_string e))
    results;
  Printf.printf
    "%d jobs: %d ok, %d failed, %d shed (queue), %d shed (deadline)\n"
    (Array.length jobs) stats.Hlp_util.Supervisor.ok
    stats.Hlp_util.Supervisor.failed stats.Hlp_util.Supervisor.shed_queue
    stats.Hlp_util.Supervisor.shed_deadline;
  (match signal with
  | Some _ -> print_endline "stopped by signal; journals flushed"
  | None -> ());
  let summary_json =
    Hlp_util.Json.Obj
      [ ("command", Hlp_util.Json.Str "batch");
        ("jobs",
         Hlp_util.Json.List
           (Array.to_list
              (Array.mapi
                 (fun i r ->
                   Hlp_util.Json.Obj
                     (("name", Hlp_util.Json.Str jobs.(i).bj_name)
                     ::
                     (match r with
                     | Ok g ->
                         [ ("status", Hlp_util.Json.Str "ok");
                           ("estimate",
                            Hlp_util.Json.Float
                              g.Hlp_power.Probprop.capacitance);
                           ("provenance",
                            Hlp_power.Probprop.provenance_json
                              g.Hlp_power.Probprop.provenance) ]
                     | Error e ->
                         [ ("status",
                            Hlp_util.Json.Str (Hlp_util.Err.class_name e));
                           ("error",
                            Hlp_util.Json.Str (Hlp_util.Err.to_string e)) ])))
                 results)));
        ("stats",
         Hlp_util.Json.Obj
           [ ("ran", Hlp_util.Json.Int stats.Hlp_util.Supervisor.ran);
             ("ok", Hlp_util.Json.Int stats.Hlp_util.Supervisor.ok);
             ("failed", Hlp_util.Json.Int stats.Hlp_util.Supervisor.failed);
             ("shed_queue",
              Hlp_util.Json.Int stats.Hlp_util.Supervisor.shed_queue);
             ("shed_deadline",
              Hlp_util.Json.Int stats.Hlp_util.Supervisor.shed_deadline) ]);
        ("signal",
         match signal with
         | Some s ->
             Hlp_util.Json.Int (Hlp_util.Supervisor.signal_exit_code s - 128)
         | None -> Hlp_util.Json.Null);
        ("telemetry", Hlp_util.Telemetry.json_value ()) ]
  in
  (match report with
  | Some path ->
      Hlp_util.Json.write ~path summary_json;
      Printf.printf "batch report written to %s\n" path
  | None -> ());
  (match checkpoint_dir with
  | Some dir ->
      Hlp_util.Json.write
        ~path:(Filename.concat dir "batch_summary.json")
        summary_json
  | None -> ());
  (match telemetry_json with
  | Some path ->
      Hlp_util.Journal.write_atomic ~path (Hlp_util.Telemetry.to_json () ^ "\n")
  | None -> ());
  (match trace_out with
  | Some path -> Hlp_util.Trace.write ~path
  | None -> ());
  match signal with
  | Some s -> Hlp_util.Supervisor.signal_exit_code s
  | None -> (
      (* 0 iff every job delivered; otherwise the stable code of the first
         failure in job order, so scripts see a deterministic class *)
      match
        Array.find_opt (function Error _ -> true | Ok _ -> false) results
      with
      | Some (Error e) -> Hlp_util.Err.exit_code e
      | _ -> 0)

let batch_cmd =
  let jobs_file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"JOBS.json"
             ~doc:
               "JSON array of estimate jobs; each object may set $(b,name), \
                $(b,circuit), $(b,width), $(b,seed), $(b,engine), \
                $(b,relative_precision), $(b,max_cycles), $(b,batch), \
                $(b,node_limit)")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:
               "journal every job's Monte Carlo state into $(docv) (created \
                if missing) and snapshot per-job results there atomically; \
                required for $(b,--resume)")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:
               "resume killed jobs from their journals in \
                $(b,--checkpoint-dir): finished batches are replayed, not \
                re-simulated, and resumed estimates are byte-identical to \
                uninterrupted ones")
  in
  let max_inflight =
    Arg.(value & opt (some int) None
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:
               "bound on concurrently running jobs (default: half the \
                recommended domain count); must be >= 1")
  in
  let queue_budget =
    Arg.(value & opt (some int) None
         & info [ "queue-budget" ] ~docv:"N"
             ~doc:
               "admission-control budget: jobs beyond the first $(docv) are \
                shed with the typed overloaded error (exit 70) instead of \
                queueing unboundedly")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:
               "wall-clock budget for the whole batch; jobs not started in \
                time are shed with the deadline-exceeded error")
  in
  let max_retries =
    Arg.(value & opt (some int) None
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"retries per failed worker shard (>= 1)")
  in
  let breaker_threshold =
    Arg.(value & opt (some int) None
         & info [ "breaker-threshold" ] ~docv:"N"
             ~doc:
               "consecutive symbolic BDD budget trips before the breaker \
                opens and jobs route straight to Monte Carlo (default 3)")
  in
  let breaker_cooldown =
    Arg.(value & opt (some float) None
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:
               "seconds the symbolic breaker stays open before one probe \
                job may try symbolic again (default 30)")
  in
  let telemetry_json =
    Arg.(value & opt (some string) None
         & info [ "telemetry-json" ] ~docv:"FILE"
             ~doc:"enable the telemetry layer and write it to $(docv) as JSON")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"enable span tracing and write Chrome trace JSON to $(docv)")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"write the batch summary JSON to $(docv) (atomic)")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a supervised campaign of estimate jobs with checkpoint/resume")
    Term.(const batch $ jobs_file $ checkpoint_dir $ resume $ max_inflight
          $ queue_budget $ deadline $ max_retries $ breaker_threshold
          $ breaker_cooldown $ telemetry_json $ trace_out $ report)

(* --- serve --- *)

(* The serve knobs a SIGHUP reload may change, assembled from CLI flags
   at startup and re-read from --config on each reload. A config file is
   a JSON object with any of: queue_budget, deadline_s, slow_s,
   mem_soft_mb, mem_hard_mb; a present key overrides, an explicit null
   clears an optional, a missing key keeps the current value. *)
let knobs_of_config base path =
  let module J = Hlp_util.Json in
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error m ->
      raise (Hlp_util.Err.invalid_input ~what:"--config" ("unreadable: " ^ m))
  in
  match J.parse contents with
  | Error m ->
      raise (Hlp_util.Err.invalid_input ~what:"--config" ("parse: " ^ m))
  | Ok v ->
      let opt name conv current =
        match J.member name v with
        | None -> current
        | Some J.Null -> None
        | Some jv -> (
            match conv jv with
            | Some x -> Some x
            | None ->
                raise
                  (Hlp_util.Err.invalid_input ~what:("--config: " ^ name)
                     "has the wrong type"))
      in
      let mb name current =
        Option.map (fun m -> m * 1024 * 1024)
          (opt name J.to_int_opt (Option.map (fun b -> b / (1024 * 1024)) current))
      in
      let open Hlp_util.Server in
      {
        queue_budget =
          Option.value ~default:base.queue_budget
            (opt "queue_budget" J.to_int_opt (Some base.queue_budget));
        deadline_s = opt "deadline_s" J.to_float_opt base.deadline_s;
        slow_s = opt "slow_s" J.to_float_opt base.slow_s;
        mem_soft_bytes = mb "mem_soft_mb" base.mem_soft_bytes;
        mem_hard_bytes = mb "mem_hard_mb" base.mem_hard_bytes;
      }

let snapshot_file state_dir = Filename.concat state_dir "snapshot.hlp"

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let serve socket max_inflight queue_budget deadline breaker_threshold
    breaker_cooldown telemetry_json trace_out access_log access_log_max_bytes
    slow_threshold state_dir snapshot_interval pid_file mem_soft_mb mem_hard_mb
    config =
  with_typed_errors @@ fun () ->
  let deadline = require_positive_float ~flag:"--deadline" deadline in
  let max_inflight = require_at_least ~flag:"--max-inflight" 1 max_inflight in
  let queue_budget = require_at_least ~flag:"--queue-budget" 1 queue_budget in
  let slow_threshold =
    require_positive_float ~flag:"--slow-threshold" slow_threshold
  in
  let access_log_max_bytes =
    require_at_least ~flag:"--access-log-max-bytes" 1 access_log_max_bytes
  in
  let snapshot_interval =
    Option.value ~default:5.0
      (require_positive_float ~flag:"--snapshot-interval" snapshot_interval)
  in
  ignore (require_at_least ~flag:"--mem-soft-mb" 1 mem_soft_mb);
  ignore (require_at_least ~flag:"--mem-hard-mb" 1 mem_hard_mb);
  (* the flight recorder (per-op histograms, access log, metrics op) runs
     off the telemetry switch: a serving daemon always records *)
  Hlp_util.Telemetry.enable ();
  if trace_out <> None then Hlp_util.Trace.enable ();
  let service =
    Hlp_power.Service.create ?failure_threshold:breaker_threshold
      ?cooldown_s:breaker_cooldown ()
  in
  (* hot-reloadable knobs: CLI flags seed the record, --config (when
     given) overrides at startup and on every SIGHUP *)
  let cli_knobs =
    {
      Hlp_util.Server.queue_budget =
        Option.value ~default:Hlp_util.Server.default_knobs.queue_budget
          queue_budget;
      deadline_s = deadline;
      slow_s = slow_threshold;
      mem_soft_bytes = Option.map (fun m -> m * 1024 * 1024) mem_soft_mb;
      mem_hard_bytes = Option.map (fun m -> m * 1024 * 1024) mem_hard_mb;
    }
  in
  let initial =
    match config with
    | Some path -> knobs_of_config cli_knobs path
    | None -> cli_knobs
  in
  Hlp_util.Server.validate_knobs initial;
  let knobs = Atomic.make initial in
  (* SIGHUP: the handler only flips a flag; the reload itself — file
     read, validation, Atomic.set — runs on the accept tick, so nothing
     allocates or raises inside a signal handler and a bad config can be
     rejected loudly without dropping the daemon *)
  let hup = Atomic.make false in
  (try
     ignore
       (Sys.signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set hup true)))
   with Invalid_argument _ | Sys_error _ -> ());
  (* warm-restart rehydration before the socket opens: the first request
     for a previously-warm key is already a byte-identical hit *)
  (match state_dir with
  | Some dir -> (
      ensure_dir dir;
      match Hlp_power.Service.load_snapshot service ~path:(snapshot_file dir) with
      | `Restored n ->
          Printf.printf "hlpower serve: restored %d cache entries from snapshot\n%!" n
      | `Cold reason ->
          Printf.printf "hlpower serve: cold start (snapshot %s)\n%!" reason)
  | None -> ());
  (match pid_file with
  | Some path ->
      Hlp_util.Journal.write_atomic ~path (string_of_int (Unix.getpid ()) ^ "\n")
  | None -> ());
  let last_spill = ref (Hlp_util.Clock.now_s ()) in
  let spill () =
    match state_dir with
    | None -> ()
    | Some dir -> (
        try ignore (Hlp_power.Service.save_snapshot service ~path:(snapshot_file dir))
        with _ -> () (* an unwritable disk must not kill the daemon *))
  in
  let on_tick () =
    if Atomic.compare_and_set hup true false then begin
      match
        match config with
        | Some path -> knobs_of_config (Atomic.get knobs) path
        | None -> Atomic.get knobs
      with
      | k ->
          Hlp_util.Server.set_knobs knobs k;
          Printf.printf "hlpower serve: knobs reloaded\n%!"
      | exception Hlp_util.Err.Error e ->
          Printf.printf "hlpower serve: reload rejected [%s]: %s\n%!"
            (Hlp_util.Err.class_name e) (Hlp_util.Err.to_string e)
    end;
    let now = Hlp_util.Clock.now_s () in
    if now -. !last_spill >= snapshot_interval then begin
      last_spill := now;
      spill ()
    end
  in
  let (), signal =
    Hlp_util.Supervisor.with_graceful_stop (fun token ->
        Hlp_util.Server.serve ?max_inflight
          ~overload:Hlp_power.Service.overload_response ~token
          ~on_ready:(fun () ->
            Printf.printf "hlpower serve: listening on %s\n%!" socket)
          ?access_log ?access_log_max_bytes ~knobs ~on_tick
          ~on_memory_soft:(fun () -> ignore (Hlp_power.Service.trim service))
          ~path:socket
          (Hlp_power.Service.handle service))
  in
  (* final spill: the drain path leaves the freshest possible snapshot
     for the next incarnation *)
  spill ();
  (match pid_file with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ());
  (match telemetry_json with
  | Some path ->
      Hlp_util.Journal.write_atomic ~path (Hlp_util.Telemetry.to_json () ^ "\n")
  | None -> ());
  (match trace_out with
  | Some path -> Hlp_util.Trace.write ~path
  | None -> ());
  print_endline "hlpower serve: drained";
  match signal with
  | Some s -> Hlp_util.Supervisor.signal_exit_code s
  | None -> 0

let serve_cmd =
  let socket =
    Arg.(value & opt string "/tmp/hlpower.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:
               "Unix-domain socket to listen on (stale files are replaced; \
                a path with a live daemon is refused with the typed \
                invalid-input code)")
  in
  let max_inflight =
    Arg.(value & opt (some int) None
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:
               "worker domains serving connections (default: half the \
                recommended domain count); must be >= 1")
  in
  let queue_budget =
    Arg.(value & opt (some int) None
         & info [ "queue-budget" ] ~docv:"N"
             ~doc:
               "admission budget: connections beyond $(docv) waiting for a \
                worker receive one typed overloaded frame (exit-code field \
                70) and are closed")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"per-request wall-clock budget (typed deadline-exceeded)")
  in
  let breaker_threshold =
    Arg.(value & opt (some int) None
         & info [ "breaker-threshold" ] ~docv:"N"
             ~doc:
               "consecutive symbolic BDD budget trips before estimates route \
                straight to Monte Carlo (default 3)")
  in
  let breaker_cooldown =
    Arg.(value & opt (some float) None
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:"seconds the symbolic breaker stays open (default 30)")
  in
  let telemetry_json =
    Arg.(value & opt (some string) None
         & info [ "telemetry-json" ] ~docv:"FILE"
             ~doc:
               "enable telemetry and write it to $(docv) at drain (cache \
                hit/miss counters live under server.*)")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"enable span tracing and write Chrome trace JSON to $(docv)")
  in
  let access_log =
    Arg.(value & opt (some string) None
         & info [ "access-log" ] ~docv:"FILE"
             ~doc:
               "write one JSON line per served request (timestamp, request \
                id, op, cache outcome, queue/service seconds, bytes, status) \
                to $(docv), rotated at the size bound")
  in
  let access_log_max_bytes =
    Arg.(value & opt (some int) None
         & info [ "access-log-max-bytes" ] ~docv:"BYTES"
             ~doc:
               "rotate the access log past $(docv) bytes (default 16 MiB); \
                the log plus its one rotation never exceed ~2x this")
  in
  let slow_threshold =
    Arg.(value & opt (some float) None
         & info [ "slow-threshold" ] ~docv:"SECONDS"
             ~doc:
               "requests slower than $(docv) bump server.slow_requests and \
                emit a server.slow_request trace instant carrying the \
                request id")
  in
  let state_dir =
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:
               "crash-only warm restarts: rehydrate the estimate/symbolic \
                caches from $(docv)/snapshot.hlp at startup (torn, stale, or \
                mismatched snapshots self-heal to a counted cold start) and \
                spill them back atomically every --snapshot-interval and at \
                drain")
  in
  let snapshot_interval =
    Arg.(value & opt (some float) None
         & info [ "snapshot-interval" ] ~docv:"SECONDS"
             ~doc:"seconds between cache snapshot spills (default 5)")
  in
  let pid_file =
    Arg.(value & opt (some string) None
         & info [ "pid-file" ] ~docv:"FILE"
             ~doc:
               "write the daemon pid to $(docv) atomically at startup and \
                unlink it on drain, so supervision and ops tooling find the \
                daemon without parsing ps")
  in
  let mem_soft_mb =
    Arg.(value & opt (some int) None
         & info [ "mem-soft-mb" ] ~docv:"MIB"
             ~doc:
               "soft memory budget: RSS at or above $(docv) MiB triggers \
                proportional cache eviction each sample \
                (server.memory.soft_trims)")
  in
  let mem_hard_mb =
    Arg.(value & opt (some int) None
         & info [ "mem-hard-mb" ] ~docv:"MIB"
             ~doc:
               "hard memory budget: RSS at or above $(docv) MiB sheds new \
                requests with the typed overloaded envelope \
                (server.memory.hard_sheds) instead of dying to the OOM \
                killer")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config" ] ~docv:"FILE"
             ~doc:
               "JSON knob file (queue_budget, deadline_s, slow_s, \
                mem_soft_mb, mem_hard_mb) applied at startup and re-read on \
                SIGHUP — a hot reload that never drops connections; an \
                invalid file is rejected loudly and the old knobs stay")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent estimation daemon (fingerprint-keyed hot \
          caches, admission control, cache snapshot/restore, \
          memory-pressure-aware admission, SIGHUP knob reload, graceful \
          SIGINT/SIGTERM drain)")
    Term.(const serve $ socket $ max_inflight $ queue_budget $ deadline
          $ breaker_threshold $ breaker_cooldown $ telemetry_json $ trace_out
          $ access_log $ access_log_max_bytes $ slow_threshold $ state_dir
          $ snapshot_interval $ pid_file $ mem_soft_mb $ mem_hard_mb $ config)

(* --- supervise --- *)

let supervise socket state_dir pid_file journal probe_interval probe_misses
    backoff_base backoff_cap flap_window flap_max grace seed mem_soft_mb
    mem_hard_mb queue_budget deadline config serve_args =
  with_typed_errors @@ fun () ->
  let probe_interval =
    Option.value ~default:0.5
      (require_positive_float ~flag:"--probe-interval" probe_interval)
  in
  let probe_misses =
    Option.value ~default:4 (require_at_least ~flag:"--probe-misses" 1 probe_misses)
  in
  let backoff_base =
    Option.value ~default:0.1
      (require_positive_float ~flag:"--backoff-base" backoff_base)
  in
  let backoff_cap =
    Option.value ~default:5.0
      (require_positive_float ~flag:"--backoff-cap" backoff_cap)
  in
  let flap_window =
    Option.value ~default:30.0
      (require_positive_float ~flag:"--flap-window" flap_window)
  in
  let flap_max =
    Option.value ~default:5 (require_at_least ~flag:"--flap-max" 1 flap_max)
  in
  let grace =
    Option.value ~default:5.0 (require_positive_float ~flag:"--grace" grace)
  in
  Hlp_util.Telemetry.enable ();
  (* the supervision journal: one JSONL line per lifecycle event *)
  let lines = Option.map (fun p -> Hlp_util.Journal.Lines.open_ p) journal in
  let log_event ev =
    let j = Hlp_util.Supervisor.watchdog_event_json ev in
    (match lines with
    | Some l -> (
        try Hlp_util.Journal.Lines.append l (Hlp_util.Json.to_string ~compact:true j)
        with _ -> ())
    | None -> ());
    (* the console mirror keeps an unjournaled run observable *)
    Printf.printf "hlpower supervise: %s\n%!"
      (Hlp_util.Json.to_string ~compact:true j)
  in
  (* the child is a re-exec of this binary (bare fork is unsafe under
     OCaml 5 domains): hlpower serve with the lifecycle flags threaded
     through, plus any raw passthrough args after -- *)
  let child_argv =
    let opt flag v f = match v with Some x -> [ flag; f x ] | None -> [] in
    Array.of_list
      ([ Sys.executable_name; "serve"; "--socket"; socket ]
      @ opt "--state-dir" state_dir Fun.id
      @ opt "--pid-file" pid_file Fun.id
      @ opt "--mem-soft-mb" mem_soft_mb string_of_int
      @ opt "--mem-hard-mb" mem_hard_mb string_of_int
      @ opt "--queue-budget" queue_budget string_of_int
      @ opt "--deadline" deadline string_of_float
      @ opt "--config" config Fun.id
      @ serve_args)
  in
  let start () =
    Unix.create_process Sys.executable_name child_argv Unix.stdin Unix.stdout
      Unix.stderr
  in
  (* liveness: one bounded ping round trip on a fresh connection — a
     daemon that accepts but cannot answer is as dead as one that won't
     accept *)
  let probe () =
    match Hlp_util.Server.connect ~wait_s:0.25 socket with
    | exception _ -> false
    | c ->
        Fun.protect
          ~finally:(fun () -> Hlp_util.Server.close c)
          (fun () ->
            match
              Hlp_util.Server.request_within ~timeout_s:(2.0 *. probe_interval)
                c
                (Hlp_power.Service.ping_request ())
            with
            | exception _ -> false
            | resp -> (
                match Hlp_power.Service.parse_response resp with
                | Ok r -> r.Hlp_power.Service.ok
                | Error _ -> false))
  in
  let outcome, signal =
    Hlp_util.Supervisor.with_graceful_stop (fun token ->
        Hlp_util.Supervisor.watch ~probe ~probe_every_s:probe_interval
          ~probe_misses ~backoff_base_s:backoff_base ~backoff_cap_s:backoff_cap
          ~flap_window_s:flap_window ~flap_max ~grace_s:grace ?seed
          ~on_event:log_event ~token ~start ())
  in
  Option.iter
    (fun l -> try Hlp_util.Journal.Lines.close l with _ -> ())
    lines;
  match outcome with
  | `Gave_up n ->
      raise
        (Hlp_util.Err.Error
           (Hlp_util.Err.Worker_failure
              {
                shard = 0;
                attempts = n;
                why =
                  Printf.sprintf
                    "watchdog flap breaker: %d restarts within %.0fs" n
                    flap_window;
              }))
  | `Drained -> (
      print_endline "hlpower supervise: drained";
      match signal with
      | Some s -> Hlp_util.Supervisor.signal_exit_code s
      | None -> 0)

let supervise_cmd =
  let socket =
    Arg.(value & opt string "/tmp/hlpower.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket the supervised daemon listens on")
  in
  let state_dir =
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:
               "threaded through to the child daemon: warm restarts \
                rehydrate its caches from $(docv)/snapshot.hlp")
  in
  let pid_file =
    Arg.(value & opt (some string) None
         & info [ "pid-file" ] ~docv:"FILE"
             ~doc:"threaded through to the child daemon (its pid, not ours)")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:
               "supervision journal: one JSON line per lifecycle event \
                (started, healthy, probe-timeout, exited, restarting, \
                gave-up, draining, drained)")
  in
  let probe_interval =
    Arg.(value & opt (some float) None
         & info [ "probe-interval" ] ~docv:"SECONDS"
             ~doc:"seconds between ping health probes (default 0.5)")
  in
  let probe_misses =
    Arg.(value & opt (some int) None
         & info [ "probe-misses" ] ~docv:"N"
             ~doc:
               "consecutive probe failures before the child is declared \
                wedged and restarted (default 4)")
  in
  let backoff_base =
    Arg.(value & opt (some float) None
         & info [ "backoff-base" ] ~docv:"SECONDS"
             ~doc:"decorrelated-jitter restart backoff base (default 0.1)")
  in
  let backoff_cap =
    Arg.(value & opt (some float) None
         & info [ "backoff-cap" ] ~docv:"SECONDS"
             ~doc:"restart backoff cap (default 5)")
  in
  let flap_window =
    Arg.(value & opt (some float) None
         & info [ "flap-window" ] ~docv:"SECONDS"
             ~doc:"sliding window of the flap breaker (default 30)")
  in
  let flap_max =
    Arg.(value & opt (some int) None
         & info [ "flap-max" ] ~docv:"N"
             ~doc:
               "more than $(docv) restarts inside the flap window give up \
                with the typed worker-failure exit (default 5)")
  in
  let grace =
    Arg.(value & opt (some float) None
         & info [ "grace" ] ~docv:"SECONDS"
             ~doc:
               "SIGTERM-to-SIGKILL escalation grace when draining or \
                restarting a wedged child (default 5)")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"N"
             ~doc:"fix the backoff jitter stream (tests)")
  in
  let mem_soft_mb =
    Arg.(value & opt (some int) None
         & info [ "mem-soft-mb" ] ~docv:"MIB"
             ~doc:"threaded through to the child daemon")
  in
  let mem_hard_mb =
    Arg.(value & opt (some int) None
         & info [ "mem-hard-mb" ] ~docv:"MIB"
             ~doc:"threaded through to the child daemon")
  in
  let queue_budget =
    Arg.(value & opt (some int) None
         & info [ "queue-budget" ] ~docv:"N"
             ~doc:"threaded through to the child daemon")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"threaded through to the child daemon")
  in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config" ] ~docv:"FILE"
             ~doc:"threaded through to the child daemon (SIGHUP hot reload)")
  in
  let serve_args =
    Arg.(value & pos_all string []
         & info [] ~docv:"SERVE_ARG"
             ~doc:
               "extra raw arguments appended to the child's serve command \
                line (after --)")
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Watchdog for the estimation daemon: re-exec hlpower serve, \
          health-probe it over ping, restart on crash or wedge with \
          decorrelated-jitter backoff and a flap breaker, propagate \
          SIGTERM as graceful drain, and journal every lifecycle event")
    Term.(const supervise $ socket $ state_dir $ pid_file $ journal
          $ probe_interval $ probe_misses $ backoff_base $ backoff_cap
          $ flap_window $ flap_max $ grace $ seed $ mem_soft_mb $ mem_hard_mb
          $ queue_budget $ deadline $ config $ serve_args)

(* --- client --- *)

let client_op_enum =
  [ ("estimate", `Estimate); ("sampler", `Sampler); ("ping", `Ping);
    ("stats", `Stats); ("metrics", `Metrics) ]

let client socket op circuit width engine seed rp max_cycles node_limit cycles
    sleep_s clients requests connect_wait max_retries request_timeout
    prometheus =
  with_typed_errors @@ fun () ->
  let clients = max 1 clients and requests = max 1 requests in
  if prometheus && op <> `Metrics then
    raise
      (Hlp_util.Err.invalid_input ~what:"--prometheus"
         "only meaningful with --op metrics");
  let build id =
    match op with
    | `Ping -> Hlp_power.Service.ping_request ~id ?sleep_s ()
    | `Stats -> Hlp_power.Service.stats_request ~id ()
    | `Metrics -> Hlp_power.Service.metrics_request ~id ()
    | `Estimate ->
        Hlp_power.Service.estimate_request ~id ?engine ?seed
          ?relative_precision:rp ?max_cycles ?node_limit ~circuit ~width ()
    | `Sampler ->
        Hlp_power.Service.sampler_request ~id ?engine ?seed ?cycles ~circuit
          ~width ()
  in
  (* closed-loop loadgen: each client holds one persistent connection and
     issues its requests back-to-back; responses are printed after all
     clients join, in (client, request) order, so two runs against the
     same cache state are byte-comparable on stdout *)
  let run_client c () =
    (* the resilient client: reconnects and retries through restarts and
       shed load; every protocol op is idempotent (see Service), so the
       default retry policy applies. Jitter seeded per client index for
       a reproducible schedule. *)
    let cl =
      Hlp_util.Server.Client.create ~seed:c ?max_retries
        ?request_timeout_s:request_timeout ?connect_wait_s:connect_wait socket
    in
    Fun.protect ~finally:(fun () -> Hlp_util.Server.Client.close cl) @@ fun () ->
    let lats = Array.make requests 0.0 in
    let outs = Array.make requests "" in
    let first_err = ref None in
    for r = 0 to requests - 1 do
      let payload = build ((c * requests) + r) in
      let t0 = Hlp_util.Clock.now_s () in
      let resp = Hlp_util.Server.Client.request cl payload in
      lats.(r) <- Hlp_util.Clock.now_s () -. t0;
      outs.(r) <-
        (match Hlp_power.Service.parse_response resp with
        | Ok pr when pr.Hlp_power.Service.ok ->
            if prometheus then
              Hlp_power.Service.prometheus_of_metrics
                (Option.value ~default:(Hlp_util.Json.Obj [])
                   pr.Hlp_power.Service.result)
            else
              Option.value ~default:"{}" (Hlp_power.Service.result_string pr)
        | Ok pr ->
            let cls, msg, code =
              Option.value ~default:("unknown", "missing error body", 1)
                pr.Hlp_power.Service.error
            in
            if !first_err = None then first_err := Some code;
            Printf.sprintf "error %s (%d): %s" cls code msg
        | Error m ->
            if !first_err = None then first_err := Some 65;
            "error bad-response: " ^ m)
    done;
    (lats, outs, !first_err, Hlp_util.Server.Client.counts cl)
  in
  let all =
    List.map Domain.join (List.init clients (fun c -> Domain.spawn (run_client c)))
  in
  List.iteri
    (fun c (_, outs, _, _) ->
      Array.iteri
        (fun r line ->
          (* prometheus output is a multi-line document, not a result line *)
          if prometheus then print_string line
          else Printf.printf "client %d req %d: %s\n" c r line)
        outs)
    all;
  let lats =
    Array.of_list (List.concat_map (fun (l, _, _, _) -> Array.to_list l) all)
  in
  Array.sort Float.compare lats;
  let n = Array.length lats in
  (* the same histogram/quantile math the server reports, so client-side
     and server-side percentiles of one run agree within Hdr's bound *)
  let hist = Hlp_util.Hdr.create () in
  Array.iter (fun l -> Hlp_util.Hdr.record hist (l *. 1e9)) lats;
  let snap = Hlp_util.Hdr.snapshot hist in
  let pct p = Hlp_util.Hdr.quantile snap p /. 1e6 in
  let total = Array.fold_left ( +. ) 0.0 lats in
  Printf.eprintf
    "%d requests over %d client(s): p50 %.3f ms, p99 %.3f ms, mean %.3f ms, \
     max %.3f ms\n"
    n clients (pct 0.50) (pct 0.99)
    (1000.0 *. total /. float_of_int n)
    (1000.0 *. lats.(n - 1));
  let logical, wire =
    List.fold_left
      (fun (l, w) (_, _, _, (cl, cw)) -> (l + cl, w + cw))
      (0, 0) all
  in
  if wire > logical then
    Printf.eprintf "retries: %d extra frame(s), amplification %.3f\n"
      (wire - logical)
      (float_of_int wire /. float_of_int (max 1 logical));
  match List.find_map (fun (_, _, e, _) -> e) all with
  | Some code -> code
  | None -> 0

let client_cmd =
  let socket =
    Arg.(value & opt string "/tmp/hlpower.sock"
         & info [ "socket" ] ~docv:"PATH" ~doc:"socket of a running daemon")
  in
  let op =
    Arg.(value & opt (enum client_op_enum) `Estimate
         & info [ "op" ] ~docv:"OP" ~doc:(enum_doc client_op_enum))
  in
  let circuit =
    Arg.(value & opt string "adder"
         & info [ "circuit" ] ~docv:"CIRCUIT"
             ~doc:"circuit name (validated by the server)")
  in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"operand bit width") in
  let engine =
    Arg.(value & opt (some string) None
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"simulation engine (server default: bitparallel)")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~doc:"PRNG seed (server default: 47)")
  in
  let rp =
    Arg.(value & opt (some float) None
         & info [ "relative-precision" ]
             ~doc:"Monte Carlo stopping precision (server default: 0.05)")
  in
  let max_cycles =
    Arg.(value & opt (some int) None
         & info [ "max-cycles" ] ~doc:"Monte Carlo cycle budget")
  in
  let node_limit =
    Arg.(value & opt (some int) None
         & info [ "node-limit" ] ~doc:"symbolic BDD node budget")
  in
  let cycles =
    Arg.(value & opt (some int) None
         & info [ "cycles" ] ~doc:"sampler op: cosimulated cycles (default 256)")
  in
  let sleep_s =
    Arg.(value & opt (some float) None
         & info [ "sleep" ] ~docv:"SECONDS"
             ~doc:"ping op: hold the worker busy (overload testing)")
  in
  let clients =
    Arg.(value & opt (int_at_least 1 "--clients") 1
         & info [ "clients" ] ~docv:"N" ~doc:"concurrent closed-loop clients")
  in
  let requests =
    Arg.(value & opt (int_at_least 1 "--requests") 1
         & info [ "requests" ] ~docv:"M" ~doc:"requests per client")
  in
  let connect_wait =
    Arg.(value & opt (some float) None
         & info [ "connect-wait" ] ~docv:"SECONDS"
             ~doc:"how long to retry connecting to a starting daemon \
                   (default 5)")
  in
  let max_retries =
    Arg.(value & opt (some int) None
         & info [ "max-retries" ] ~docv:"N"
             ~doc:
               "bounded retries per request through reconnects, shed load, \
                and torn frames (default 5); all protocol ops are \
                idempotent, so replay is safe")
  in
  let request_timeout =
    Arg.(value & opt (some float) None
         & info [ "request-timeout" ] ~docv:"SECONDS"
             ~doc:
               "per-round-trip deadline (typed deadline-exceeded, then \
                retry); without it a hung server hangs the client")
  in
  let prometheus =
    Arg.(value & flag
         & info [ "prometheus" ]
             ~doc:
               "with --op metrics: print the snapshot in Prometheus text \
                exposition format instead of JSON")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Query a running hlpower serve daemon; with --clients/--requests \
          it is a closed-loop load generator (responses on stdout, latency \
          stats on stderr)")
    Term.(const client $ socket $ op $ circuit $ width $ engine $ seed $ rp
          $ max_cycles $ node_limit $ cycles $ sleep_s $ clients $ requests
          $ connect_wait $ max_retries $ request_timeout $ prometheus)

(* --- top --- *)

(* Live daemon dashboard: poll the [metrics] op and render deltas.
   Rates (req/s, sheds/s) come from successive counter samples, so the
   dashboard needs no server-side state beyond the flight recorder. *)
let top socket interval count once =
  with_typed_errors @@ fun () ->
  let module J = Hlp_util.Json in
  ignore (require_positive_float ~flag:"--interval" interval);
  ignore (require_at_least ~flag:"--count" 1 count);
  let cl = Hlp_util.Server.Client.create socket in
  Fun.protect ~finally:(fun () -> Hlp_util.Server.Client.close cl) @@ fun () ->
  let fetch () =
    let resp =
      Hlp_util.Server.Client.request cl (Hlp_power.Service.metrics_request ())
    in
    match Hlp_power.Service.parse_response resp with
    | Ok pr when pr.Hlp_power.Service.ok ->
        Option.value ~default:(J.Obj []) pr.Hlp_power.Service.result
    | Ok pr ->
        let cls, msg, _ =
          Option.value ~default:("unknown", "missing error body", 1)
            pr.Hlp_power.Service.error
        in
        raise
          (Hlp_util.Err.invalid_input ~what:"metrics"
             (Printf.sprintf "%s: %s" cls msg))
    | Error m -> raise (Hlp_util.Err.invalid_input ~what:"metrics response" m)
  in
  let num name v =
    Option.value ~default:0.0 (Option.bind (J.member name v) J.to_float_opt)
  in
  let str name v =
    Option.value ~default:"?" (Option.bind (J.member name v) J.to_str_opt)
  in
  let obj_fields name v =
    match J.member name v with Some (J.Obj fs) -> fs | _ -> []
  in
  let counter snap name =
    match J.member "counters" snap with Some c -> num name c | None -> 0.0
  in
  (* per-op service-time histograms live under server.op.<op>.service_ns *)
  let op_rows snap =
    List.filter_map
      (fun (hname, h) ->
        let prefix = "server.op." and suffix = ".service_ns" in
        let pl = String.length prefix and sl = String.length suffix in
        let nl = String.length hname in
        if
          nl > pl + sl
          && String.sub hname 0 pl = prefix
          && String.sub hname (nl - sl) sl = suffix
        then
          let op = String.sub hname pl (nl - pl - sl) in
          Some (op, num "count" h, num "p50" h /. 1e6, num "p99" h /. 1e6)
        else None)
      (obj_fields "histograms" snap)
  in
  let render ~prev_reqs ~prev_sheds ~dt snap =
    let b = Buffer.create 2048 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    let reqs = counter snap "server.requests" in
    let sheds = counter snap "server.sheds" in
    let rate cur prev = if dt > 0.0 then (cur -. prev) /. dt else 0.0 in
    line "hlpower top — %s   uptime %.1fs   telemetry %s" socket
      (num "uptime_s" snap)
      (match J.member "telemetry_enabled" snap with
      | Some (J.Bool true) -> "on"
      | _ -> "off");
    line
      "requests %.0f (%.1f/s)   sheds %.0f (%.1f/s)   slow %.0f   frame \
       errors %.0f"
      reqs (rate reqs prev_reqs) sheds (rate sheds prev_sheds)
      (counter snap "server.slow_requests")
      (counter snap "server.frame_errors");
    line "estimates inflight %.0f   coalesced %.0f   breaker %s"
      (num "estimates_inflight" snap)
      (num "estimates_coalesced" snap)
      (str "breaker" snap);
    (match op_rows snap with
    | [] -> ()
    | rows ->
        line "";
        line "%-24s %10s %10s %10s" "op" "count" "p50 ms" "p99 ms";
        List.iter
          (fun (op, c, p50, p99) ->
            line "%-24s %10.0f %10.3f %10.3f" op c p50 p99)
          rows);
    (match obj_fields "caches" snap with
    | [] -> ()
    | caches ->
        line "";
        line "%-24s %9s %8s %8s %8s %6s %6s" "cache" "size/cap" "infl"
          "hits" "misses" "evict" "hit%";
        List.iter
          (fun (cname, c) ->
            let hr =
              match Option.bind (J.member "hit_ratio" c) J.to_float_opt with
              | Some r -> Printf.sprintf "%5.1f" (100.0 *. r)
              | None -> "    -"
            in
            line "%-24s %5.0f/%-3.0f %8.0f %8.0f %8.0f %8.0f %s" cname
              (num "length" c) (num "capacity" c) (num "inflight" c)
              (num "hits" c) (num "misses" c) (num "evictions" c) hr)
          caches);
    Buffer.contents b
  in
  (* non-TTY stdout (CI, pipes) degrades to a single snapshot: `top` is
     then a formatted one-shot metrics query, greppable in scripts *)
  let tty = Unix.isatty Unix.stdout in
  let one_shot = once || not tty in
  let interval = Option.value ~default:1.0 interval in
  let rounds =
    if one_shot then 1 else Option.value ~default:max_int count
  in
  let prev = ref None in
  (try
     for i = 0 to rounds - 1 do
       let t = Hlp_util.Clock.now_s () in
       let snap = fetch () in
       let prev_reqs, prev_sheds, dt =
         match !prev with
         | None -> (counter snap "server.requests", counter snap "server.sheds", 0.0)
         | Some (r, s, t0) -> (r, s, t -. t0)
       in
       let out = render ~prev_reqs ~prev_sheds ~dt snap in
       if tty && not one_shot then print_string "\027[2J\027[H";
       print_string out;
       flush stdout;
       prev := Some (counter snap "server.requests", counter snap "server.sheds", t);
       if i < rounds - 1 then Unix.sleepf interval
     done
   with Sys.Break -> ());
  0

let top_cmd =
  let socket =
    Arg.(value & pos 0 string "/tmp/hlpower.sock"
         & info [] ~docv:"SOCKET" ~doc:"socket of a running daemon")
  in
  let interval =
    Arg.(value & opt (some float) None
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"seconds between refreshes (default 1)")
  in
  let count =
    Arg.(value & opt (some int) None
         & info [ "count" ] ~docv:"N" ~doc:"stop after N refreshes")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:
               "print one snapshot and exit (implied when stdout is not a \
                terminal)")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard of a running hlpower serve daemon: request rates, \
          per-op latency percentiles, cache hit ratios, inflight and shed \
          counts, polled from the metrics op")
    Term.(const top $ socket $ interval $ count $ once)

(* --- chaos-proxy --- *)

let chaos_proxy listen upstream seed rate faults max_delay workers =
  with_typed_errors @@ fun () ->
  let faults =
    match faults with
    | None -> None
    | Some names ->
        Some
          (List.map
             (fun n ->
               match Hlp_util.Chaos.fault_of_name (String.trim n) with
               | Some f -> f
               | None ->
                   raise
                     (Hlp_util.Err.invalid_input ~what:"--faults"
                        ("unknown fault " ^ n ^ " (expected "
                        ^ String.concat ", "
                            (List.map Hlp_util.Chaos.fault_name
                               Hlp_util.Chaos.all_faults)
                        ^ ")")))
             (String.split_on_char ',' names))
  in
  let proxy =
    Hlp_util.Chaos.start ?seed ?rate ?faults ?max_delay_s:max_delay ?workers
      ~listen ~upstream ()
  in
  Printf.printf "hlpower chaos-proxy: %s -> %s\n%!" listen upstream;
  let (), signal =
    Hlp_util.Supervisor.with_graceful_stop (fun token ->
        while not (Hlp_util.Guard.is_cancelled token) do
          Unix.sleepf 0.1
        done)
  in
  Hlp_util.Chaos.stop proxy;
  print_endline "hlpower chaos-proxy: stopped";
  match signal with
  | Some s -> Hlp_util.Supervisor.signal_exit_code s
  | None -> 0

let chaos_cmd =
  let listen =
    Arg.(value & opt string "/tmp/hlpower-chaos.sock"
         & info [ "listen" ] ~docv:"PATH"
             ~doc:"socket clients connect to (faults injected here)")
  in
  let upstream =
    Arg.(value & opt string "/tmp/hlpower.sock"
         & info [ "upstream" ] ~docv:"PATH"
             ~doc:"socket of the real hlpower serve daemon")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~doc:"fault-schedule seed (default 0)")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"P"
             ~doc:"per-chunk fault probability in [0,1] (default 0.05)")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"LIST"
             ~doc:
               "comma-separated fault subset: delay, drop, truncate, \
                corrupt, split, slam (default: all)")
  in
  let max_delay =
    Arg.(value & opt (some float) None
         & info [ "max-delay" ] ~docv:"SECONDS"
             ~doc:"upper bound of an injected delay (default 0.05)")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"N"
             ~doc:"concurrent proxied connections (default 8)")
  in
  Cmd.v
    (Cmd.info "chaos-proxy"
       ~doc:
         "Fault-injecting proxy between a client and a serve daemon: \
          deterministic (seeded) delays, drops, truncation, corruption, \
          split writes, and slammed connections, for resilience soaks")
    Term.(const chaos_proxy $ listen $ upstream $ seed $ rate $ faults
          $ max_delay $ workers)

(* --- bus-encode --- *)

let trace_enum =
  [ ("sequential", fun _ ~width ~n -> Hlp_bus.Traces.sequential () ~width ~n);
    ("jumps",
     fun rng ~width ~n -> Hlp_bus.Traces.sequential_with_jumps rng ~jump_prob:0.05 ~width ~n);
    ("interleaved",
     fun rng ~width ~n ->
       Hlp_bus.Traces.interleaved_arrays rng ~bases:[ 0x100; 0x4200; 0x8000 ]
         ~stride:1 ~width ~n);
    ("loop",
     fun rng ~width ~n -> Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:(n / 15) ~width);
    ("random", fun rng ~width ~n -> Hlp_bus.Traces.random_data rng ~width ~n) ]

let bus_encode trace width n seed =
  let rng = Hlp_util.Prng.create seed in
  let stream = trace rng ~width ~n in
  let train = Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:60 ~width in
  let beach = Hlp_bus.Encoding.train_beach ~width train in
  Printf.printf "%-14s %12s %6s\n" "scheme" "trans/word" "lines";
  List.iter
    (fun scheme ->
      assert (Hlp_bus.Encoding.roundtrip scheme ~width stream);
      let r = Hlp_bus.Encoding.evaluate scheme ~width stream in
      Printf.printf "%-14s %12.3f %6d\n"
        (Hlp_bus.Encoding.scheme_name scheme)
        r.Hlp_bus.Encoding.per_word r.Hlp_bus.Encoding.lines)
    [ Hlp_bus.Encoding.Binary; Hlp_bus.Encoding.Gray_code; Hlp_bus.Encoding.Bus_invert;
      Hlp_bus.Encoding.T0; Hlp_bus.Encoding.T0_bus_invert;
      Hlp_bus.Encoding.Working_zone { zones = 4; offset_bits = 4 }; beach ];
  0

let bus_cmd =
  let trace =
    Arg.(value & opt (enum trace_enum) (List.assoc "sequential" trace_enum)
         & info [ "trace" ] ~docv:"TRACE" ~doc:(enum_doc trace_enum))
  in
  let width = Arg.(value & opt int 16 & info [ "width" ] ~doc:"bus width") in
  let n = Arg.(value & opt int 4000 & info [ "words" ] ~doc:"trace length") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "bus-encode" ~doc:"Compare bus encodings on a generated trace")
    Term.(const bus_encode $ trace $ width $ n $ seed)

(* --- pm-sim --- *)

let pm_sim sessions seed =
  let device = Hlp_pm.Policy.default_device in
  let w = Hlp_pm.Policy.workload ~sessions (Hlp_util.Prng.create seed) in
  Printf.printf "%-24s %12s %8s %10s\n" "policy" "improvement" "delay" "shutdowns";
  List.iter
    (fun p ->
      let s = Hlp_pm.Policy.simulate device p w in
      Printf.printf "%-24s %11.2fx %7.2f%% %10d\n" (Hlp_pm.Policy.policy_name p)
        s.Hlp_pm.Policy.improvement
        (100.0 *. s.Hlp_pm.Policy.delay_penalty)
        s.Hlp_pm.Policy.shutdowns)
    [ Hlp_pm.Policy.Always_on; Hlp_pm.Policy.Timeout 5.0; Hlp_pm.Policy.Threshold 1.0;
      Hlp_pm.Policy.Regression; Hlp_pm.Policy.Exp_average { alpha = 0.3; prewake = false };
      Hlp_pm.Policy.Oracle ];
  0

let pm_cmd =
  let sessions = Arg.(value & opt int 10_000 & info [ "sessions" ] ~doc:"workload size") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "pm-sim" ~doc:"Simulate system-level shutdown policies")
    Term.(const pm_sim $ sessions $ seed)

(* --- fsm-encode --- *)

let machine_enum =
  [ ("counter", fun _ -> Hlp_fsm.Stg.counter_fsm ~bits:4);
    ("updown", fun _ -> Hlp_fsm.Stg.updown ~bits:4);
    ("reactive", fun _ -> Hlp_fsm.Stg.reactive ~wait_states:4 ~burst_states:4);
    ("seqdet", fun _ -> Hlp_fsm.Stg.sequence_detector ~pattern:[ true; false; true; true ]);
    ("random",
     fun seed ->
       Hlp_fsm.Stg.random_fsm (Hlp_util.Prng.create seed) ~states:12 ~input_bits:2
         ~output_bits:3) ]

let fsm_encode machine iterations seed =
  let stg = machine seed in
  let dist = Hlp_fsm.Markov.analyze stg in
  let rng = Hlp_util.Prng.create seed in
  Printf.printf "%-10s %16s %18s\n" "encoding" "E[Hamming]/cycle" "synth cap/cycle";
  List.iter
    (fun (name, enc) ->
      Printf.printf "%-10s %16.3f %18.1f\n" name
        (Hlp_fsm.Encode.cost stg dist enc)
        (Hlp_fsm.Synth.switched_capacitance_per_cycle ~encoding:enc stg))
    [
      ("natural", Hlp_fsm.Encode.natural stg);
      ("gray", Hlp_fsm.Encode.gray stg);
      ("one-hot", Hlp_fsm.Encode.one_hot stg);
      ("annealed", Hlp_fsm.Encode.anneal ~iterations rng stg dist);
    ];
  0

let fsm_cmd =
  let machine =
    Arg.(value & opt (enum machine_enum) (List.assoc "random" machine_enum)
         & info [ "machine" ] ~docv:"MACHINE" ~doc:(enum_doc machine_enum))
  in
  let iterations =
    Arg.(value & opt int 20_000 & info [ "iterations" ] ~doc:"annealing iterations")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "fsm-encode" ~doc:"Low-power state encoding of a benchmark machine")
    Term.(const fsm_encode $ machine $ iterations $ seed)

(* --- export --- *)

let format_enum =
  [ ("verilog",
     fun name net -> print_string (Hlp_logic.Export.to_verilog ~module_name:name net));
    ("dot", fun _ net -> print_string (Hlp_logic.Export.to_dot ~max_nodes:2000 net)) ]

let export (name, circuit) width format =
  format name (circuit width);
  0

let export_cmd =
  let circuit =
    (* keep the circuit's name around for the Verilog module name *)
    let named = List.map (fun (name, f) -> (name, (name, f))) circuit_enum in
    Arg.(value & opt (enum named) (List.assoc "adder" named)
         & info [ "circuit" ] ~docv:"CIRCUIT" ~doc:(enum_doc circuit_enum))
  in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"operand bit width") in
  let format =
    Arg.(value & opt (enum format_enum) (List.assoc "verilog" format_enum)
         & info [ "format" ] ~docv:"FORMAT" ~doc:(enum_doc format_enum))
  in
  Cmd.v (Cmd.info "export" ~doc:"Emit a generated circuit as Verilog or dot")
    Term.(const export $ circuit $ width $ format)

(* --- info --- *)

let show_info () =
  print_endline "hlpower: high-level power modeling, estimation, and optimization";
  print_endline "reproduction of Macii/Pedram/Somenzi (DAC'97 / IEEE TCAD'98)";
  print_endline "";
  print_endline "libraries:";
  List.iter
    (fun (name, what) -> Printf.printf "  %-14s %s\n" name what)
    [
      ("hlp_util", "PRNG, statistics, least squares, bit utilities");
      ("hlp_logic", "gate library, netlists, datapath generators");
      ("hlp_bdd", "hash-consed ROBDDs (ite, quantify, compose, probability)");
      ("hlp_sim", "zero-delay and event-driven (glitch) simulation, streams");
      ("hlp_fsm", "STGs, Markov analysis, encodings, controller synthesis");
      ("hlp_rtl", "CDFGs, scheduling, allocation, multi-Vdd, Table I FIR");
      ("hlp_isa", "RISC ISA, cycle/energy machine, Tiwari model, Hsieh synthesis");
      ("hlp_power", "entropy/complexity models, macro-models, sampling, SRAM");
      ("hlp_bus", "Bus-Invert, Gray, T0, Working-Zone, Beach encodings");
      ("hlp_pm", "shutdown policies: timeout, threshold, regression, Hwang-Wu");
      ("hlp_optlogic", "precomputation, gated clocks, guarded evaluation, retiming");
    ];
  print_endline "";
  print_endline "run `dune exec bench/main.exe` for the full experiment reproduction.";
  0

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Library inventory") Term.(const show_info $ const ())

let () =
  let doc = "high-level power modeling, estimation, and optimization toolkit" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "hlpower" ~version:"1.0.0" ~doc)
          [ estimate_cmd; batch_cmd; serve_cmd; supervise_cmd; client_cmd;
            top_cmd; chaos_cmd;
            bus_cmd; pm_cmd; fsm_cmd; export_cmd;
            info_cmd ]))
