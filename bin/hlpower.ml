(* hlpower: command-line front end to the toolkit.

   Subcommands:
     estimate    power-estimate a generated RT module three ways
     bus-encode  compare bus encodings on a generated address/data trace
     pm-sim      simulate system-level shutdown policies
     fsm-encode  low-power state encoding of a benchmark machine
     info        inventory of the library *)

open Cmdliner

let circuit_of_name name width =
  match name with
  | "adder" -> Hlp_logic.Generators.adder_circuit width
  | "multiplier" -> Hlp_logic.Generators.multiplier_circuit width
  | "max" -> Hlp_logic.Generators.max_circuit width
  | "alu" -> Hlp_logic.Generators.alu_circuit width
  | "comparator" -> Hlp_logic.Generators.comparator_circuit width
  | "parity" -> Hlp_logic.Generators.parity_circuit width
  | _ -> failwith ("unknown circuit: " ^ name)

let stream_of_name rng name width n =
  match name with
  | "uniform" -> Hlp_sim.Streams.uniform rng ~width ~n
  | "walk" -> Hlp_sim.Streams.gaussian_walk rng ~width ~sigma:20.0 ~n
  | "correlated" -> Hlp_sim.Streams.correlated_bits rng ~width ~p:0.5 ~rho:0.7 ~n
  | "biased" -> Hlp_sim.Streams.biased_bits rng ~width ~p:0.25 ~n
  | _ -> failwith ("unknown stream: " ^ name)

(* --- estimate --- *)

let estimate circuit width cycles stream seed engine jobs =
  let engine =
    match Hlp_sim.Engine.of_string engine with
    | Some e -> e
    | None -> failwith ("unknown engine: " ^ engine)
  in
  if cycles < 2 then failwith "need --cycles >= 2 (the reference averages over trace transitions)";
  let net = circuit_of_name circuit width in
  Printf.printf "circuit: %s\n" (Hlp_logic.Netlist.stats_string net);
  let nin = Array.length net.Hlp_logic.Netlist.inputs in
  let rng = Hlp_util.Prng.create seed in
  let trace = stream_of_name rng stream nin cycles in
  let vector i = Array.init nin (fun b -> Hlp_util.Bits.bit trace.(i) b) in
  let r = Hlp_sim.Parsim.replay ?jobs ~engine net ~vector ~n:cycles in
  let reference = Hlp_util.Stats.mean r.Hlp_sim.Parsim.transition_caps in
  Printf.printf "gate-level reference:   %10.1f cap units/cycle  [%s engine]\n"
    reference
    (Hlp_sim.Engine.to_string engine);
  List.iter
    (fun (name, model) ->
      let est = Hlp_power.Entropy.estimate_netlist ~model net ~input_trace:trace in
      Printf.printf "%-22s %10.1f cap units/cycle\n" name
        (est.Hlp_power.Entropy.c_tot *. est.Hlp_power.Entropy.e_avg))
    [ ("entropy (Marculescu):", Hlp_power.Entropy.Marculescu);
      ("entropy (Nemani-Najm):", Hlp_power.Entropy.Nemani_najm) ];
  let ces =
    Hlp_power.Complexity.ces_switched_capacitance_estimate Hlp_power.Complexity.ces_default net
  in
  Printf.printf "%-22s %10.1f cap units/cycle\n" "gate-equivalents (CES):" ces;
  0

let estimate_cmd =
  let circuit =
    Arg.(value & opt string "multiplier"
         & info [ "circuit" ] ~doc:"adder|multiplier|max|alu|comparator|parity")
  in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"operand bit width") in
  let cycles = Arg.(value & opt int 2000 & info [ "cycles" ] ~doc:"simulation cycles") in
  let stream =
    Arg.(value & opt string "uniform" & info [ "stream" ] ~doc:"uniform|walk|correlated|biased")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let engine =
    Arg.(value & opt string "bitparallel"
         & info [ "engine" ]
             ~doc:
               "simulation engine for the gate-level reference: \
                scalar|bitparallel|parallel (bit engines pack 63 trace \
                cycles per word-wide step; estimates agree to round-off)")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:
               "worker domains for the parallel engine (default: all cores); \
                results are bit-identical for any value")
  in
  Cmd.v (Cmd.info "estimate" ~doc:"Power-estimate a generated RT module")
    Term.(const estimate $ circuit $ width $ cycles $ stream $ seed $ engine $ jobs)

(* --- bus-encode --- *)

let bus_encode trace width n seed =
  let rng = Hlp_util.Prng.create seed in
  let stream =
    match trace with
    | "sequential" -> Hlp_bus.Traces.sequential () ~width ~n
    | "jumps" -> Hlp_bus.Traces.sequential_with_jumps rng ~jump_prob:0.05 ~width ~n
    | "interleaved" ->
        Hlp_bus.Traces.interleaved_arrays rng ~bases:[ 0x100; 0x4200; 0x8000 ]
          ~stride:1 ~width ~n
    | "loop" -> Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:(n / 15) ~width
    | "random" -> Hlp_bus.Traces.random_data rng ~width ~n
    | _ -> failwith ("unknown trace: " ^ trace)
  in
  let train = Hlp_bus.Traces.loop_kernel rng ~body:12 ~iterations:60 ~width in
  let beach = Hlp_bus.Encoding.train_beach ~width train in
  Printf.printf "%-14s %12s %6s\n" "scheme" "trans/word" "lines";
  List.iter
    (fun scheme ->
      assert (Hlp_bus.Encoding.roundtrip scheme ~width stream);
      let r = Hlp_bus.Encoding.evaluate scheme ~width stream in
      Printf.printf "%-14s %12.3f %6d\n"
        (Hlp_bus.Encoding.scheme_name scheme)
        r.Hlp_bus.Encoding.per_word r.Hlp_bus.Encoding.lines)
    [ Hlp_bus.Encoding.Binary; Hlp_bus.Encoding.Gray_code; Hlp_bus.Encoding.Bus_invert;
      Hlp_bus.Encoding.T0; Hlp_bus.Encoding.T0_bus_invert;
      Hlp_bus.Encoding.Working_zone { zones = 4; offset_bits = 4 }; beach ];
  0

let bus_cmd =
  let trace =
    Arg.(value & opt string "sequential"
         & info [ "trace" ] ~doc:"sequential|jumps|interleaved|loop|random")
  in
  let width = Arg.(value & opt int 16 & info [ "width" ] ~doc:"bus width") in
  let n = Arg.(value & opt int 4000 & info [ "words" ] ~doc:"trace length") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "bus-encode" ~doc:"Compare bus encodings on a generated trace")
    Term.(const bus_encode $ trace $ width $ n $ seed)

(* --- pm-sim --- *)

let pm_sim sessions seed =
  let device = Hlp_pm.Policy.default_device in
  let w = Hlp_pm.Policy.workload ~sessions (Hlp_util.Prng.create seed) in
  Printf.printf "%-24s %12s %8s %10s\n" "policy" "improvement" "delay" "shutdowns";
  List.iter
    (fun p ->
      let s = Hlp_pm.Policy.simulate device p w in
      Printf.printf "%-24s %11.2fx %7.2f%% %10d\n" (Hlp_pm.Policy.policy_name p)
        s.Hlp_pm.Policy.improvement
        (100.0 *. s.Hlp_pm.Policy.delay_penalty)
        s.Hlp_pm.Policy.shutdowns)
    [ Hlp_pm.Policy.Always_on; Hlp_pm.Policy.Timeout 5.0; Hlp_pm.Policy.Threshold 1.0;
      Hlp_pm.Policy.Regression; Hlp_pm.Policy.Exp_average { alpha = 0.3; prewake = false };
      Hlp_pm.Policy.Oracle ];
  0

let pm_cmd =
  let sessions = Arg.(value & opt int 10_000 & info [ "sessions" ] ~doc:"workload size") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "pm-sim" ~doc:"Simulate system-level shutdown policies")
    Term.(const pm_sim $ sessions $ seed)

(* --- fsm-encode --- *)

let fsm_encode machine iterations seed =
  let stg =
    match machine with
    | "counter" -> Hlp_fsm.Stg.counter_fsm ~bits:4
    | "updown" -> Hlp_fsm.Stg.updown ~bits:4
    | "reactive" -> Hlp_fsm.Stg.reactive ~wait_states:4 ~burst_states:4
    | "seqdet" -> Hlp_fsm.Stg.sequence_detector ~pattern:[ true; false; true; true ]
    | "random" ->
        Hlp_fsm.Stg.random_fsm (Hlp_util.Prng.create seed) ~states:12 ~input_bits:2
          ~output_bits:3
    | _ -> failwith ("unknown machine: " ^ machine)
  in
  let dist = Hlp_fsm.Markov.analyze stg in
  let rng = Hlp_util.Prng.create seed in
  Printf.printf "%-10s %16s %18s\n" "encoding" "E[Hamming]/cycle" "synth cap/cycle";
  List.iter
    (fun (name, enc) ->
      Printf.printf "%-10s %16.3f %18.1f\n" name
        (Hlp_fsm.Encode.cost stg dist enc)
        (Hlp_fsm.Synth.switched_capacitance_per_cycle ~encoding:enc stg))
    [
      ("natural", Hlp_fsm.Encode.natural stg);
      ("gray", Hlp_fsm.Encode.gray stg);
      ("one-hot", Hlp_fsm.Encode.one_hot stg);
      ("annealed", Hlp_fsm.Encode.anneal ~iterations rng stg dist);
    ];
  0

let fsm_cmd =
  let machine =
    Arg.(value & opt string "random"
         & info [ "machine" ] ~doc:"counter|updown|reactive|seqdet|random")
  in
  let iterations =
    Arg.(value & opt int 20_000 & info [ "iterations" ] ~doc:"annealing iterations")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"PRNG seed") in
  Cmd.v (Cmd.info "fsm-encode" ~doc:"Low-power state encoding of a benchmark machine")
    Term.(const fsm_encode $ machine $ iterations $ seed)

(* --- export --- *)

let export circuit width format =
  let net = circuit_of_name circuit width in
  (match format with
  | "verilog" -> print_string (Hlp_logic.Export.to_verilog ~module_name:circuit net)
  | "dot" -> print_string (Hlp_logic.Export.to_dot ~max_nodes:2000 net)
  | _ -> failwith ("unknown format: " ^ format));
  0

let export_cmd =
  let circuit =
    Arg.(value & opt string "adder"
         & info [ "circuit" ] ~doc:"adder|multiplier|max|alu|comparator|parity")
  in
  let width = Arg.(value & opt int 8 & info [ "width" ] ~doc:"operand bit width") in
  let format = Arg.(value & opt string "verilog" & info [ "format" ] ~doc:"verilog|dot") in
  Cmd.v (Cmd.info "export" ~doc:"Emit a generated circuit as Verilog or dot")
    Term.(const export $ circuit $ width $ format)

(* --- info --- *)

let show_info () =
  print_endline "hlpower: high-level power modeling, estimation, and optimization";
  print_endline "reproduction of Macii/Pedram/Somenzi (DAC'97 / IEEE TCAD'98)";
  print_endline "";
  print_endline "libraries:";
  List.iter
    (fun (name, what) -> Printf.printf "  %-14s %s\n" name what)
    [
      ("hlp_util", "PRNG, statistics, least squares, bit utilities");
      ("hlp_logic", "gate library, netlists, datapath generators");
      ("hlp_bdd", "hash-consed ROBDDs (ite, quantify, compose, probability)");
      ("hlp_sim", "zero-delay and event-driven (glitch) simulation, streams");
      ("hlp_fsm", "STGs, Markov analysis, encodings, controller synthesis");
      ("hlp_rtl", "CDFGs, scheduling, allocation, multi-Vdd, Table I FIR");
      ("hlp_isa", "RISC ISA, cycle/energy machine, Tiwari model, Hsieh synthesis");
      ("hlp_power", "entropy/complexity models, macro-models, sampling, SRAM");
      ("hlp_bus", "Bus-Invert, Gray, T0, Working-Zone, Beach encodings");
      ("hlp_pm", "shutdown policies: timeout, threshold, regression, Hwang-Wu");
      ("hlp_optlogic", "precomputation, gated clocks, guarded evaluation, retiming");
    ];
  print_endline "";
  print_endline "run `dune exec bench/main.exe` for the full experiment reproduction.";
  0

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Library inventory") Term.(const show_info $ const ())

let () =
  let doc = "high-level power modeling, estimation, and optimization toolkit" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "hlpower" ~version:"1.0.0" ~doc)
          [ estimate_cmd; bus_cmd; pm_cmd; fsm_cmd; export_cmd; info_cmd ]))
